"""Structured tracing of simulated runs.

A :class:`TraceRecorder` collects three kinds of events while the DES
runs, mirroring the Chrome trace-event model so exports are trivial:

* **spans** (phase ``X``) — a task servicing a batch on a core, or the
  context-switch stall between two different tasks on the same core;
* **instants** (phase ``i``) — batch completions, OS migrations, DVFS
  transitions, fault injections, EAS placement decisions, process
  resume/termination (the latter only with ``process_events=True``);
* **counters** (phase ``C``) — queue depths on every named
  :class:`~repro.simcore.engine.Store`, cumulative context switches and
  cumulative energy (the simulated INA226 stream).

Design constraints, enforced by tests (``tests/test_trace_determinism``):

* **zero overhead when off** — every hook in the engine, executor,
  governor and meter is guarded by ``if trace is not None``; an
  untraced run executes exactly the pre-observability code path;
* **read-only** — a recorder never draws from the run's RNG, never
  schedules an event and never changes a duration, so traced and
  untraced runs produce byte-identical :class:`RunResult` numbers, and
  two traced runs of the same seed produce identical event streams.

Event timestamps are simulated microseconds; the ``pid`` of an event is
the repetition it belongs to (so multi-repetition traces open as one
process per repetition in Perfetto) and the ``tid`` is the core id, or
one of the ``TID_*`` synthetic tracks for non-core actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "active_recorder",
    "set_active_recorder",
    "TID_GOVERNOR",
    "TID_OS_SCHED",
    "TID_RUNTIME",
]

#: synthetic track ids for actors that are not cores
TID_GOVERNOR = 900
TID_OS_SCHED = 901
TID_RUNTIME = 902

#: one mebibyte, the denominator of the paper's "per MB" counters
_MB = float(1 << 20)


@dataclass(frozen=True)
class TraceEvent:
    """One trace event (Chrome trace-event phases ``X``/``i``/``C``).

    ``args`` is a tuple of ``(key, value)`` pairs rather than a dict so
    events are hashable, deterministic to compare and cheap to pickle.
    """

    name: str
    phase: str
    ts_us: float
    pid: int
    tid: int
    dur_us: float = 0.0
    category: str = "sim"
    args: Tuple[Tuple[str, Any], ...] = ()


class TraceRecorder:
    """Collects trace events and rolls the aggregate counters.

    One recorder spans a whole measurement run (all repetitions); the
    executor brackets each repetition with :meth:`begin_repetition` /
    :meth:`end_repetition` so events land on per-repetition tracks and
    window/byte totals accumulate correctly.
    """

    def __init__(self, process_events: bool = False) -> None:
        #: also record engine-level process resume/end instants (noisy;
        #: off by default, ``cstream trace --process-events`` turns it on)
        self.process_events = process_events
        # Batched dispatch: hooks append one raw tuple (pid captured at
        # emit time) to ``_pending``; :attr:`events` materializes the
        # frozen TraceEvent dataclasses on first read. Constructing a
        # dataclass per event inside the DES hot loop cost more than the
        # hooks' own bookkeeping; the flushed stream is field-for-field
        # the stream eager construction produced. Counters stay eager —
        # hooks read them back mid-run (cumulative counter events).
        self._events: List[TraceEvent] = []
        self._pending: List[tuple] = []
        self.repetition = 0
        # aggregate counters (the raw material of TraceSummary)
        self.repetitions_seen = 0
        self.batches_completed = 0
        self.batches_processed = 0
        self.bytes_processed = 0
        self.window_us = 0.0
        self.context_switches = 0.0
        self.migrations = 0
        self.dvfs_transitions = 0
        self.fault_injections = 0
        self.core_busy_us: Dict[int, float] = {}
        self.queue_highwater: Dict[str, int] = {}
        self.energy_busy_uj = 0.0
        self.energy_overhead_uj = 0.0
        # control-loop counters (recorder-level only: TraceSummary's
        # field set is frozen for cached-pickle compatibility)
        self.replans = 0
        self.replans_adopted = 0
        self.plan_migrations = 0
        self.migration_pause_us = 0.0
        # fault-subsystem counters (recorder-level only, same reason)
        self.core_failures = 0
        self.core_stalls = 0
        self.interconnect_faults = 0
        self.corrupted_batches = 0
        self.batch_retries = 0

    # -- run structure -------------------------------------------------------

    def begin_repetition(self, repetition: int) -> None:
        self.repetition = repetition
        self.repetitions_seen += 1

    def end_repetition(
        self, window_us: float, batch_bytes: int, batches: int
    ) -> None:
        self.window_us += window_us
        self.bytes_processed += batch_bytes * batches
        self.batches_processed += batches

    # -- raw emission --------------------------------------------------------

    def _emit(
        self,
        name: str,
        phase: str,
        ts_us: float,
        tid: int,
        dur_us: float = 0.0,
        category: str = "sim",
        **args: Any,
    ) -> None:
        self._pending.append(
            (
                name,
                phase,
                ts_us,
                self.repetition,
                tid,
                dur_us,
                category,
                tuple(sorted(args.items())),
            )
        )

    def _flush(self) -> None:
        pending = self._pending
        if pending:
            self._events.extend(
                TraceEvent(
                    name=raw[0],
                    phase=raw[1],
                    ts_us=raw[2],
                    pid=raw[3],
                    tid=raw[4],
                    dur_us=raw[5],
                    category=raw[6],
                    args=raw[7],
                )
                for raw in pending
            )
            pending.clear()

    @property
    def events(self) -> List[TraceEvent]:
        """The recorded stream, in emission order (flushes the buffer)."""
        self._flush()
        return self._events

    # -- executor / engine hooks --------------------------------------------

    def span(
        self, name: str, core_id: int, start_us: float, end_us: float, **args
    ) -> None:
        """A task (or switch stall) occupied ``core_id`` for a span."""
        self.core_busy_us[core_id] = (
            self.core_busy_us.get(core_id, 0.0) + (end_us - start_us)
        )
        self._emit(
            name, "X", start_us, core_id,
            dur_us=end_us - start_us, category="task", **args,
        )

    def context_switch(
        self,
        core_id: int,
        count: float,
        ts_us: float,
        duration_us: float = 0.0,
    ) -> None:
        """``count`` context switches on a core (fractional counts model
        the per-KB preemption rates of :class:`MechanismDynamics`)."""
        self.context_switches += count
        if duration_us > 0.0:
            self.span(
                "ctx-switch", core_id, ts_us - duration_us, ts_us
            )
        self._emit(
            "context_switches", "C", ts_us, core_id,
            category="os", value=self.context_switches,
        )

    def migration(self, core_id: int, ts_us: float) -> None:
        self.migrations += 1
        self._emit(
            "migration", "i", ts_us, core_id, category="os",
            total=self.migrations,
        )

    def dvfs_transition(
        self, core_id: int, from_mhz: float, to_mhz: float, ts_us: float
    ) -> None:
        self.dvfs_transitions += 1
        self._emit(
            "dvfs-transition", "i", ts_us, TID_GOVERNOR, category="dvfs",
            core=core_id, from_mhz=from_mhz, to_mhz=to_mhz,
        )

    def fault(self, core_id: int, ts_us: float, frequency_mhz: float) -> None:
        self.fault_injections += 1
        self._emit(
            "fault-injected", "i", ts_us, TID_RUNTIME, category="fault",
            core=core_id, capped_mhz=frequency_mhz,
        )

    def core_failure(
        self, core_id: int, failover_core: int, ts_us: float
    ) -> None:
        """Permanent core death; later work reroutes to ``failover_core``.

        Trace invariant TRC006 holds that no task span starts on
        ``core_id`` after this instant."""
        self.fault_injections += 1
        self.core_failures += 1
        self._emit(
            "core-failure", "i", ts_us, TID_RUNTIME, category="fault",
            core=core_id, failover=failover_core,
        )

    def core_stall(
        self, core_id: int, ts_us: float, stall_us: float
    ) -> None:
        """Transient stall charged to the core's next task."""
        self.fault_injections += 1
        self.core_stalls += 1
        self._emit(
            "core-stall", "i", ts_us, TID_RUNTIME, category="fault",
            core=core_id, stall_us=stall_us,
        )

    def interconnect_degraded(
        self, path: str, ts_us: float, factor: float
    ) -> None:
        """One interconnect path class lost bandwidth by ``factor``."""
        self.fault_injections += 1
        self.interconnect_faults += 1
        self._emit(
            "interconnect-degraded", "i", ts_us, TID_RUNTIME,
            category="fault", path=path, factor=factor,
        )

    def batch_corrupted(
        self,
        batch_index: int,
        ts_us: float,
        attempts: int,
        exhausted: bool = False,
    ) -> None:
        """Decode verification flagged a delivered batch as corrupt.

        Trace invariant TRC007 holds that every ``batch-retry`` event
        names a batch with a matching ``batch-corrupted`` event."""
        self.corrupted_batches += 1
        self._emit(
            "batch-corrupted", "i", ts_us, TID_RUNTIME, category="fault",
            batch=batch_index, attempts=attempts, exhausted=exhausted,
        )

    def batch_retry(
        self,
        batch_index: int,
        attempt: int,
        ts_us: float,
        backoff_us: float = 0.0,
    ) -> None:
        """One re-run of the final stage after a corrupt delivery."""
        self.batch_retries += 1
        self._emit(
            "batch-retry", "i", ts_us, TID_RUNTIME, category="fault",
            batch=batch_index, attempt=attempt, backoff_us=backoff_us,
        )

    def batch_complete(self, batch_index: int, ts_us: float) -> None:
        self.batches_completed += 1
        self._emit(
            "batch-complete", "i", ts_us, TID_RUNTIME, category="pipeline",
            batch=batch_index,
        )

    def queue_depth(self, queue: str, depth: int, ts_us: float) -> None:
        if depth > self.queue_highwater.get(queue, 0):
            self.queue_highwater[queue] = depth
        self._emit(
            queue, "C", ts_us, TID_RUNTIME, category="queue", value=depth,
        )

    def energy_sample(self, kind: str, energy_uj: float, ts_us: float) -> None:
        """Cumulative energy sample (the simulated INA226 stream)."""
        if kind == "busy":
            self.energy_busy_uj += energy_uj
        else:
            self.energy_overhead_uj += energy_uj
        self._emit(
            f"energy.{kind}", "C", ts_us, TID_RUNTIME, category="energy",
            value=self.energy_busy_uj + self.energy_overhead_uj,
        )

    def placement(self, name: str, cores: Tuple[int, ...]) -> None:
        """A scheduler placement decision (e.g. one EAS wake-up round)."""
        self._emit(
            name, "i", 0.0, TID_OS_SCHED, category="sched",
            cores=tuple(cores),
        )

    def process_event(self, kind: str, name: str, ts_us: float) -> None:
        """Engine-level process resume/end (only with process_events)."""
        self._emit(
            f"{kind}:{name}", "i", ts_us, TID_RUNTIME, category="process",
        )

    # -- control-loop hooks --------------------------------------------------

    def replan(
        self,
        window_index: int,
        ts_us: float,
        adopted: bool,
        reason: str,
        energy_uj_per_byte: float,
        warm_start_hits: int = 0,
    ) -> None:
        """A controller replanning decision at a window boundary."""
        self.replans += 1
        if adopted:
            self.replans_adopted += 1
        self._emit(
            "replan", "i", ts_us, TID_RUNTIME, category="control",
            window=window_index, adopted=adopted, reason=reason,
            energy_uj_per_byte=energy_uj_per_byte,
            warm_start_hits=warm_start_hits,
        )

    def plan_migration(
        self,
        window_index: int,
        start_us: float,
        pause_us: float,
        moved_replicas: int,
        energy_uj: float,
        description: str,
    ) -> None:
        """The pipeline pause while replica state transfers between
        cores (a span on the runtime track, so the Chrome trace shows
        the reconfiguration gap)."""
        self.plan_migrations += 1
        self.migration_pause_us += pause_us
        self._emit(
            "plan-migration", "X", start_us, TID_RUNTIME,
            dur_us=pause_us, category="control",
            window=window_index, moved_replicas=moved_replicas,
            energy_uj=energy_uj, moves=description,
        )

    # -- digest --------------------------------------------------------------

    def summary(
        self, scheduler: Tuple[Tuple[str, float], ...] = ()
    ) -> "TraceSummary":
        return TraceSummary(
            repetitions=self.repetitions_seen,
            batches=self.batches_processed,
            bytes_processed=self.bytes_processed,
            window_us=self.window_us,
            context_switches=self.context_switches,
            migrations=self.migrations,
            dvfs_transitions=self.dvfs_transitions,
            fault_injections=self.fault_injections,
            core_busy_us=tuple(sorted(self.core_busy_us.items())),
            queue_highwater=tuple(sorted(self.queue_highwater.items())),
            energy_busy_uj=self.energy_busy_uj,
            energy_overhead_uj=self.energy_overhead_uj,
            event_count=len(self._events) + len(self._pending),
            scheduler=tuple(scheduler),
        )


@dataclass(frozen=True)
class TraceSummary:
    """Compact per-run digest of a traced measurement.

    Attached to :class:`~repro.runtime.metrics.RunResult` (as a
    comparison-neutral field, so traced and untraced results still
    compare equal) and persisted in the result cache alongside it.
    """

    repetitions: int
    batches: int
    bytes_processed: int
    window_us: float
    context_switches: float
    migrations: int
    dvfs_transitions: int
    fault_injections: int
    core_busy_us: Tuple[Tuple[int, float], ...]
    queue_highwater: Tuple[Tuple[str, int], ...]
    energy_busy_uj: float
    energy_overhead_uj: float
    event_count: int
    #: scheduler-search instrumentation when the mechanism ran a model
    #: search: (name, value) pairs from :class:`SearchStats`
    scheduler: Tuple[Tuple[str, float], ...] = ()

    @property
    def megabytes(self) -> float:
        return self.bytes_processed / _MB

    @property
    def context_switches_per_mb(self) -> float:
        """The paper's headline OS-vs-CStream diagnostic (§VI-B)."""
        if self.bytes_processed == 0:
            return 0.0
        return self.context_switches / self.megabytes

    @property
    def migrations_per_mb(self) -> float:
        if self.bytes_processed == 0:
            return 0.0
        return self.migrations / self.megabytes

    @property
    def queue_depth_highwater(self) -> int:
        return max((d for _, d in self.queue_highwater), default=0)

    def occupancy(self) -> Dict[int, float]:
        """Per-core busy fraction of the measurement window."""
        if self.window_us <= 0:
            return {core: 0.0 for core, _ in self.core_busy_us}
        return {
            core: busy / self.window_us for core, busy in self.core_busy_us
        }

    def format(self, board=None) -> str:
        """Terminal table of the digest (what ``cstream trace`` prints)."""
        rows = [
            ("repetitions", f"{self.repetitions}"),
            ("batches", f"{self.batches}"),
            ("bytes processed", f"{self.bytes_processed}"),
            ("window", f"{self.window_us / 1000.0:.2f} ms"),
            ("context switches", f"{self.context_switches:.1f}"),
            ("context switches/MB", f"{self.context_switches_per_mb:.1f}"),
            ("migrations", f"{self.migrations}"),
            ("DVFS transitions", f"{self.dvfs_transitions}"),
            ("fault injections", f"{self.fault_injections}"),
            ("queue-depth highwater", f"{self.queue_depth_highwater}"),
            ("busy energy", f"{self.energy_busy_uj:.1f} µJ"),
            ("overhead energy", f"{self.energy_overhead_uj:.1f} µJ"),
            ("trace events", f"{self.event_count}"),
        ]
        occupancy = self.occupancy()
        labels = {}
        if board is not None:
            labels = {
                core.core_id: f" ({'big' if core.is_big else 'little'})"
                for core in board.cores
            }
        for core, fraction in sorted(occupancy.items()):
            rows.append(
                (
                    f"core {core}{labels.get(core, '')} occupancy",
                    f"{fraction:6.1%}",
                )
            )
        for name, value in self.scheduler:
            rows.append((f"scheduler {name}", f"{value:g}"))
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


# -- ambient recorder ---------------------------------------------------------
#
# Some instrumentation points sit behind call signatures that cannot carry
# a recorder without breaking public APIs (the per-repetition plan
# providers call `eas_place(board, workers, rng)`). The executor publishes
# its recorder here for the duration of a traced run; untraced runs leave
# it None so the hooks stay zero-cost.

_ACTIVE: Optional[TraceRecorder] = None


def set_active_recorder(recorder: Optional[TraceRecorder]) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def active_recorder() -> Optional[TraceRecorder]:
    return _ACTIVE
