"""Observability layer over the simulator and the experiment harness.

The paper's headline diagnostics are *event-level* claims — ~60 000
context switches per compressed MB under the OS baseline vs ~10 under
CStream, ondemand DVFS thrashing between levels, fusion winning exactly
when ``l_comm > l_comp``. This package makes those mechanisms visible
the way CStream's own perf-based profiling and INA226 sampling did on
real hardware:

* :class:`~repro.obs.trace.TraceRecorder` — structured span / instant /
  counter events hooked into the DES engine, the pipeline executor, the
  DVFS governors, the EAS placement model and the energy meter. Tracing
  defaults *off* and never perturbs a simulated number: every hook is a
  guarded read-only observer (``if trace is not None``), so a traced run
  is byte-identical to an untraced one.
* :class:`~repro.obs.trace.TraceSummary` — the compact per-run digest
  (context switches/MB, migrations, DVFS transitions, per-core
  occupancy, queue-depth highwater) attached to
  :class:`~repro.runtime.metrics.RunResult` and cacheable alongside it.
* :mod:`~repro.obs.export` — Chrome trace-event / Perfetto JSON export
  (open the file in https://ui.perfetto.dev or ``chrome://tracing``).
* :mod:`~repro.obs.registry` — a process-wide metrics registry (wall
  clock timers + counters + sample series with total-edge-case
  percentiles) used by the scheduler search, the result cache and the
  harness to expose where *real* time goes.
* :mod:`~repro.obs.residuals` — the model-vs-measured residual ledger:
  per-window decomposition of the latency/energy residual to
  stage × core × interconnect-path components, with EWMA baselines and
  seeded deterministic anomaly scoring. The same zero-overhead
  contract as tracing: every executor hook is behind an
  ``if telemetry is not None`` guard (lint rule CSA009).
* :mod:`~repro.obs.health` — :class:`~repro.obs.health.SessionHealth`
  reports naming the most-implicated component per window (degraded
  link, retry-heavy stage, underperforming core) with confidence; the
  controller consumes these as its ``reason="diagnosis"`` trigger.
* :mod:`~repro.obs.live` — live telemetry export: NDJSON tail
  (``cstream top``) and Prometheus-style text exposition.
* :mod:`~repro.obs.check` — a dependency-free validator for the
  exported trace files and health reports (used by CI on the traced
  smoke run and the chaos health artifact).
"""

from repro.obs.registry import (
    REGISTRY,
    MetricsRegistry,
    diff_snapshots,
    quantile,
)
from repro.obs.trace import (
    TraceEvent,
    TraceRecorder,
    TraceSummary,
    active_recorder,
    set_active_recorder,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.residuals import (
    LedgerConfig,
    ResidualLedger,
    TelemetryCollector,
    WindowTelemetry,
)
from repro.obs.health import Attribution, SessionHealth, WindowHealth
from repro.obs.live import NdjsonTail, prometheus_text, read_ndjson, render_top

__all__ = [
    "Attribution",
    "LedgerConfig",
    "MetricsRegistry",
    "NdjsonTail",
    "REGISTRY",
    "ResidualLedger",
    "SessionHealth",
    "TelemetryCollector",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "WindowHealth",
    "WindowTelemetry",
    "active_recorder",
    "chrome_trace",
    "diff_snapshots",
    "prometheus_text",
    "quantile",
    "read_ndjson",
    "render_top",
    "set_active_recorder",
    "write_chrome_trace",
]
