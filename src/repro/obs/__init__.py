"""Observability layer over the simulator and the experiment harness.

The paper's headline diagnostics are *event-level* claims — ~60 000
context switches per compressed MB under the OS baseline vs ~10 under
CStream, ondemand DVFS thrashing between levels, fusion winning exactly
when ``l_comm > l_comp``. This package makes those mechanisms visible
the way CStream's own perf-based profiling and INA226 sampling did on
real hardware:

* :class:`~repro.obs.trace.TraceRecorder` — structured span / instant /
  counter events hooked into the DES engine, the pipeline executor, the
  DVFS governors, the EAS placement model and the energy meter. Tracing
  defaults *off* and never perturbs a simulated number: every hook is a
  guarded read-only observer (``if trace is not None``), so a traced run
  is byte-identical to an untraced one.
* :class:`~repro.obs.trace.TraceSummary` — the compact per-run digest
  (context switches/MB, migrations, DVFS transitions, per-core
  occupancy, queue-depth highwater) attached to
  :class:`~repro.runtime.metrics.RunResult` and cacheable alongside it.
* :mod:`~repro.obs.export` — Chrome trace-event / Perfetto JSON export
  (open the file in https://ui.perfetto.dev or ``chrome://tracing``).
* :mod:`~repro.obs.registry` — a process-wide metrics registry (wall
  clock timers + counters) used by the scheduler search, the result
  cache and the harness to expose where *real* time goes.
* :mod:`~repro.obs.check` — a dependency-free validator for the
  exported trace files (used by CI on the traced smoke run).
"""

from repro.obs.registry import REGISTRY, MetricsRegistry, diff_snapshots
from repro.obs.trace import (
    TraceEvent,
    TraceRecorder,
    TraceSummary,
    active_recorder,
    set_active_recorder,
)
from repro.obs.export import chrome_trace, write_chrome_trace

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "active_recorder",
    "chrome_trace",
    "diff_snapshots",
    "set_active_recorder",
    "write_chrome_trace",
]
