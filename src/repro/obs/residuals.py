"""Per-window residual ledger: model-vs-measured, attributed.

CStream's premise is that a calibrated cost model predicts each task's
latency and energy on asymmetric cores (Eqs 1-7). That makes the
*residual* — measured minus predicted — a sensor in its own right: a
fault that emits no heartbeat (a degraded interconnect path, a
corrupt-retry storm at the sink) still bends the measurement away from
the model, and the *shape* of the bend says which component is at
fault. This module turns one windowed session into that sensor:

* :class:`TelemetryCollector` — the executor-side observer. Two gated
  hooks (``comm``/``retry``) accumulate per-path communication time and
  per-batch retry time while the DES runs; at each window boundary
  :meth:`TelemetryCollector.collect_window` slices the core servers'
  service spans and per-batch energy into a :class:`WindowTelemetry`.
  Like the trace recorder, the collector is strictly read-only: it
  consumes no RNG draws and schedules no events, and every hook site is
  behind an ``if telemetry is not None`` guard (lint rule CSA009), so a
  session without telemetry is byte-identical to one before this module
  existed.
* :func:`predicted_breakdown` — the model's side of the ledger: the
  plan's predicted compute occupancy per core, communication time per
  interconnect path and energy per core, from the same
  :class:`~repro.core.plan.PlanEstimate` the scheduler optimizes.
* :class:`ResidualLedger` — per window, decomposes the latency residual
  into **core**, **path** and **retry** components (plus an explicit
  unattributed remainder, so the parts always sum to the whole —
  invariant HLT001), tracks an EWMA baseline and dispersion per
  component, and scores each window's components against that baseline.
  Scoring is deterministic and seeded: the only randomness is a
  vanishingly small per-component tie-break epsilon drawn once from
  ``numpy.random.default_rng(seed)`` in first-seen order.

The ledger's units are µs/byte (latency) and µJ/byte (energy),
normalized by the window's bytes, so residuals are comparable across
windows and batch sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "WindowTelemetry",
    "TelemetryCollector",
    "ResidualComponent",
    "WindowResidual",
    "LedgerConfig",
    "ResidualLedger",
    "predicted_breakdown",
]

#: component kinds the ledger attributes residuals to
COMPONENT_KINDS = ("core", "path", "retry")


@dataclass(frozen=True)
class WindowTelemetry:
    """Measured per-window telemetry sliced out of one session window.

    All times are µs over the whole window, energies µJ; the ledger
    normalizes by ``window_bytes``. Mappings are stored as sorted
    tuples so the telemetry is hashable and deterministic to iterate.
    """

    window_index: int
    batch_start: int
    batch_count: int
    batch_bytes: int
    #: service-span occupancy per (stage_index, core_id), µs
    busy_us: Tuple[Tuple[Tuple[int, int], float], ...]
    #: dynamic (busy) energy per core, µJ
    energy_uj: Tuple[Tuple[int, float], ...]
    #: communication time per interconnect path class name, µs
    comm_us: Tuple[Tuple[str, float], ...]
    #: decode-verification retry time per stage index, µs
    retry_us: Tuple[Tuple[int, float], ...]
    #: (batch_index, retry attempts) for every retried batch
    retries: Tuple[Tuple[int, int], ...]

    @property
    def window_bytes(self) -> float:
        return float(self.batch_count * self.batch_bytes)


class TelemetryCollector:
    """Executor-side telemetry observer for one windowed session.

    The executor calls :meth:`comm` and :meth:`retry` from inside the
    DES (both behind ``if telemetry is not None`` guards) and
    :meth:`collect_window` at each drained window boundary. The
    collector never touches the simulation: it only reads the servers'
    span/energy records the executor keeps anyway.
    """

    def __init__(self) -> None:
        self._comm_us: Dict[str, float] = {}
        self._retry_us: Dict[int, float] = {}
        self._retries: List[Tuple[int, int]] = []
        #: spans already consumed per core (spans lists only grow)
        self._span_seen: Dict[int, int] = {}
        self.windows: List[WindowTelemetry] = []

    # -- DES hooks (gated by the executor) ---------------------------------

    def comm(self, path: str, us: float, batch_index: int) -> None:
        """One upstream fetch took ``us`` µs over path class ``path``."""
        self._comm_us[path] = self._comm_us.get(path, 0.0) + us

    def retry(
        self, batch_index: int, stage_index: int, us: float, attempts: int
    ) -> None:
        """Decode verification re-ran ``stage_index`` for ``us`` µs."""
        self._retry_us[stage_index] = (
            self._retry_us.get(stage_index, 0.0) + us
        )
        self._retries.append((batch_index, attempts))

    # -- window boundary ----------------------------------------------------

    def collect_window(
        self,
        window_index: int,
        batch_start: int,
        batch_count: int,
        batch_bytes: int,
        servers: Mapping[int, object],
    ) -> WindowTelemetry:
        """Slice the window's telemetry; drains the hook accumulators.

        ``servers`` is the executor's ``{core_id: _CoreServer}`` map —
        duck-typed on ``.spans`` (``(task, batch, start, end)`` tuples)
        and ``.energy_by_batch`` so this package never imports the
        runtime.
        """
        busy: Dict[Tuple[int, int], float] = {}
        energy: Dict[int, float] = {}
        batch_end = batch_start + batch_count
        for core_id in sorted(servers):
            server = servers[core_id]
            spans = server.spans
            start_at = self._span_seen.get(core_id, 0)
            for task_name, _batch, start_us, end_us in spans[start_at:]:
                stage = _stage_of(task_name)
                key = (stage, core_id)
                busy[key] = busy.get(key, 0.0) + (end_us - start_us)
            self._span_seen[core_id] = len(spans)
            for batch_index, uj in server.energy_by_batch.items():
                if batch_start <= batch_index < batch_end:
                    energy[core_id] = energy.get(core_id, 0.0) + uj
        telemetry = WindowTelemetry(
            window_index=window_index,
            batch_start=batch_start,
            batch_count=batch_count,
            batch_bytes=batch_bytes,
            busy_us=tuple(sorted(busy.items())),
            energy_uj=tuple(sorted(energy.items())),
            comm_us=tuple(sorted(self._comm_us.items())),
            retry_us=tuple(sorted(self._retry_us.items())),
            retries=tuple(self._retries),
        )
        self._comm_us = {}
        self._retry_us = {}
        self._retries = []
        self.windows.append(telemetry)
        return telemetry


def _stage_of(task_name: str) -> int:
    """Stage index from a service-span label like ``s2r1``."""
    body = task_name[1:] if task_name.startswith("s") else task_name
    digits = []
    for char in body:
        if not char.isdigit():
            break
        digits.append(char)
    return int("".join(digits)) if digits else -1


def predicted_breakdown(
    plan, estimate, model
) -> Tuple[Dict[int, float], Dict[str, float], Dict[int, float]]:
    """The model's prediction, shaped like the measured telemetry.

    Returns ``(comp_us_per_byte_by_core, comm_us_per_byte_by_path,
    energy_uj_per_byte_by_core)`` for ``plan`` under ``model`` (both
    duck-typed; ``estimate`` is the model's
    :class:`~repro.core.plan.PlanEstimate` for the plan). Communication
    is re-derived per path class from the plan's topology with the same
    Eq 7 table the estimate's ``l_comm`` terms were priced with.
    """
    comp: Dict[int, float] = {}
    energy: Dict[int, float] = {}
    for task in estimate.task_estimates:
        comp[task.core_id] = (
            comp.get(task.core_id, 0.0) + task.l_comp_us_per_byte
        )
        energy[task.core_id] = (
            energy.get(task.core_id, 0.0) + task.energy_uj_per_byte
        )
    comm: Dict[str, float] = {}
    batch_bytes = float(model.profile.batch_size_bytes)
    board = model.board
    table = model.communication
    for stage_index in range(1, len(plan.assignments)):
        upstream = plan.assignments[stage_index - 1]
        consumers = plan.assignments[stage_index]
        share = (
            model.stage_output_bytes(stage_index - 1)
            / len(consumers)
            / len(upstream)
        )
        for core_id in consumers:
            for producer in upstream:
                path = board.path_between(producer, core_id)
                hop_us = share * table.unit_cost(path) + table.overhead(path)
                name = path.value
                comm[name] = comm.get(name, 0.0) + hop_us / batch_bytes
    return comp, comm, energy


@dataclass(frozen=True)
class ResidualComponent:
    """One attributed slice of a window's latency residual."""

    #: one of :data:`COMPONENT_KINDS`
    kind: str
    #: core id ("4"), path class ("c1") or retried stage index ("2")
    key: str
    measured_us_per_byte: float
    predicted_us_per_byte: float
    #: anomaly score vs the component's EWMA baseline (unitless)
    score: float

    @property
    def residual_us_per_byte(self) -> float:
        return self.measured_us_per_byte - self.predicted_us_per_byte


@dataclass(frozen=True)
class WindowResidual:
    """One window's full model-vs-measured decomposition."""

    window_index: int
    measured_latency_us_per_byte: float
    predicted_latency_us_per_byte: float
    measured_energy_uj_per_byte: float
    predicted_energy_uj_per_byte: float
    components: Tuple[ResidualComponent, ...]
    #: the residual slice no component explains; keeps HLT001 exact
    unattributed_us_per_byte: float

    @property
    def latency_residual_us_per_byte(self) -> float:
        return (
            self.measured_latency_us_per_byte
            - self.predicted_latency_us_per_byte
        )

    @property
    def energy_residual_uj_per_byte(self) -> float:
        return (
            self.measured_energy_uj_per_byte
            - self.predicted_energy_uj_per_byte
        )

    def top_component(self) -> Optional[ResidualComponent]:
        """The highest-scoring component (None when there are none)."""
        if not self.components:
            return None
        return max(self.components, key=lambda c: c.score)


@dataclass(frozen=True)
class LedgerConfig:
    """Knobs of the residual ledger's baselines and scoring."""

    #: EWMA factor on per-component residual baselines (0 = frozen)
    smoothing: float = 0.35
    #: score scale floor, as a fraction of the predicted window latency
    scale_floor_fraction: float = 0.02
    #: windows observed before any component may score as anomalous
    warmup_windows: int = 1
    #: tie-break epsilon stream (determinism, not randomness)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in [0, 1]")
        if self.scale_floor_fraction <= 0.0:
            raise ConfigurationError("scale floor must be positive")
        if self.warmup_windows < 0:
            raise ConfigurationError("warmup_windows must be >= 0")


class ResidualLedger:
    """EWMA-baselined residual decomposition across a session's windows.

    Feed one :meth:`observe` per window boundary; read back the
    :class:`WindowResidual` stream in :attr:`windows`. Scores measure
    how far a component's residual sits above its own running baseline,
    in units of its running mean absolute deviation (floored at
    ``scale_floor_fraction`` of the predicted window latency so a
    near-zero baseline cannot make noise look infinitely anomalous).
    """

    def __init__(self, config: LedgerConfig = LedgerConfig()) -> None:
        self.config = config
        self.windows: List[WindowResidual] = []
        #: component key -> [ewma_residual, ewma_absdev]
        self._baseline: Dict[Tuple[str, str], List[float]] = {}
        #: deterministic per-component tie-break epsilons
        self._epsilon: Dict[Tuple[str, str], float] = {}
        self._rng = np.random.default_rng(config.seed)

    # -- internals ----------------------------------------------------------

    def _epsilon_for(self, key: Tuple[str, str]) -> float:
        epsilon = self._epsilon.get(key)
        if epsilon is None:
            # First-seen order is deterministic (sorted telemetry), so
            # the draw sequence — and with it every score — is too.
            epsilon = float(self._rng.random()) * 1e-9
            self._epsilon[key] = epsilon
        return epsilon

    def _score(
        self, key: Tuple[str, str], residual: float, scale_floor: float
    ) -> float:
        warmed = len(self.windows) >= self.config.warmup_windows
        if not warmed:
            return 0.0
        baseline = self._baseline.get(key)
        if baseline is None:
            # A component that did not exist in any prior window (e.g.
            # retry time appearing mid-session) is scored against a zero
            # baseline: its whole residual is anomalous by definition.
            mean, absdev = 0.0, 0.0
        else:
            mean, absdev = baseline
        scale = max(absdev, scale_floor)
        if scale <= 0.0:
            return 0.0
        return (residual - mean) / scale + self._epsilon_for(key)

    def _update(self, key: Tuple[str, str], residual: float) -> None:
        alpha = self.config.smoothing
        baseline = self._baseline.get(key)
        if baseline is None:
            self._baseline[key] = [residual, abs(residual)]
            return
        mean, absdev = baseline
        mean += alpha * (residual - mean)
        absdev += alpha * (abs(residual - mean) - absdev)
        baseline[0] = mean
        baseline[1] = absdev

    # -- public API ---------------------------------------------------------

    def observe(
        self,
        telemetry: WindowTelemetry,
        measured_latency_us_per_byte: float,
        plan,
        estimate,
        model,
    ) -> WindowResidual:
        """Decompose one window's residual and update the baselines."""
        window_bytes = telemetry.window_bytes
        if window_bytes <= 0:
            raise ConfigurationError("window telemetry covers zero bytes")
        predicted_comp, predicted_comm, predicted_energy = (
            predicted_breakdown(plan, estimate, model)
        )
        scale_floor = (
            self.config.scale_floor_fraction
            * max(estimate.latency_us_per_byte, 1e-12)
        )

        components: List[ResidualComponent] = []
        updates: List[Tuple[Tuple[str, str], float]] = []

        # Core components: per-core service occupancy vs predicted
        # per-core l_comp (both µs per window byte).
        measured_by_core: Dict[int, float] = {}
        for (stage, core_id), us in telemetry.busy_us:
            measured_by_core[core_id] = (
                measured_by_core.get(core_id, 0.0) + us
            )
        for core_id in sorted(set(measured_by_core) | set(predicted_comp)):
            measured = measured_by_core.get(core_id, 0.0) / window_bytes
            predicted = predicted_comp.get(core_id, 0.0)
            key = ("core", str(core_id))
            residual = measured - predicted
            components.append(ResidualComponent(
                kind="core",
                key=str(core_id),
                measured_us_per_byte=measured,
                predicted_us_per_byte=predicted,
                score=self._score(key, residual, scale_floor),
            ))
            updates.append((key, residual))

        # Path components: per path class, measured transfer time vs the
        # plan's Eq 7 prediction.
        measured_by_path = dict(telemetry.comm_us)
        for path in sorted(set(measured_by_path) | set(predicted_comm)):
            measured = measured_by_path.get(path, 0.0) / window_bytes
            predicted = predicted_comm.get(path, 0.0)
            key = ("path", path)
            residual = measured - predicted
            components.append(ResidualComponent(
                kind="path",
                key=path,
                measured_us_per_byte=measured,
                predicted_us_per_byte=predicted,
                score=self._score(key, residual, scale_floor),
            ))
            updates.append((key, residual))

        # Retry components: the model predicts zero retries, so any
        # retry time is residual by definition.
        for stage_index, us in telemetry.retry_us:
            measured = us / window_bytes
            key = ("retry", str(stage_index))
            components.append(ResidualComponent(
                kind="retry",
                key=str(stage_index),
                measured_us_per_byte=measured,
                predicted_us_per_byte=0.0,
                score=self._score(key, measured, scale_floor),
            ))
            updates.append((key, measured))

        measured_energy = sum(
            uj for _core, uj in telemetry.energy_uj
        ) / window_bytes
        predicted_energy_total = math.fsum(predicted_energy.values())

        attributed = math.fsum(
            c.residual_us_per_byte for c in components
        )
        total_residual = (
            measured_latency_us_per_byte - estimate.latency_us_per_byte
        )
        window = WindowResidual(
            window_index=telemetry.window_index,
            measured_latency_us_per_byte=measured_latency_us_per_byte,
            predicted_latency_us_per_byte=estimate.latency_us_per_byte,
            measured_energy_uj_per_byte=measured_energy,
            predicted_energy_uj_per_byte=predicted_energy_total,
            components=tuple(components),
            unattributed_us_per_byte=total_residual - attributed,
        )
        # Baselines update after scoring so a window's own anomaly
        # cannot absorb itself.
        for key, residual in updates:
            self._update(key, residual)
        self.windows.append(window)
        return window
