"""Live session telemetry: NDJSON tail + Prometheus-style exposition.

Two export surfaces over the health stream of :mod:`repro.obs.health`:

* :class:`NdjsonTail` — appends one JSON object per window to a file as
  the session runs; ``cstream top FILE`` tails it back into a terminal
  live view (:func:`render_top`). NDJSON is the exchange format: the
  same lines round-trip into :class:`~repro.obs.health.WindowHealth`
  via :func:`read_ndjson`.
* :func:`prometheus_text` — renders the latest state of a session (and
  optionally a :class:`~repro.obs.registry.MetricsRegistry` snapshot)
  in the Prometheus text exposition format, for scraping off a file or
  one-shot endpoint.

Everything here is pull/append-only and allocation-light; none of it is
imported by the runtime unless telemetry is switched on, preserving the
zero-overhead-when-off contract.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Sequence

from repro.obs.health import FleetHealth, SessionHealth, WindowHealth
from repro.obs.registry import MetricsRegistry

__all__ = [
    "NdjsonTail",
    "read_ndjson",
    "prometheus_text",
    "fleet_prometheus_text",
    "render_top",
    "render_fleet_top",
]


class NdjsonTail:
    """Append-only NDJSON writer for per-window health records."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def emit(self, window: WindowHealth) -> None:
        self._stream.write(
            json.dumps(window.to_record(), sort_keys=True) + "\n"
        )
        self._stream.flush()

    def emit_session(self, health: SessionHealth) -> None:
        for window in health.windows:
            self.emit(window)


def read_ndjson(lines: Iterable[str]) -> List[WindowHealth]:
    """Parse an NDJSON tail back into health records.

    Blank lines are skipped so a partially written tail (or a trailing
    newline) parses cleanly.
    """
    records: List[WindowHealth] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        records.append(WindowHealth.from_record(json.loads(line)))
    return records


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(
    health: SessionHealth,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Prometheus text-format exposition of a session's latest state.

    Gauges carry the last window's values; counters accumulate across
    the session. When ``registry`` is given, its counters and timers
    are appended under the ``cstream_registry_`` prefix.
    """
    label = _prom_escape(health.label)
    lines: List[str] = []

    def gauge(name: str, help_text: str, value: float,
              extra: str = "") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        tags = f'session="{label}"' + (f",{extra}" if extra else "")
        lines.append(f"{name}{{{tags}}} {value:.9g}")

    gauge(
        "cstream_latency_constraint_us_per_byte",
        "Session latency SLO (L_set), microseconds per byte.",
        health.latency_constraint_us_per_byte,
    )
    if health.windows:
        last = health.windows[-1]
        gauge(
            "cstream_window_latency_us_per_byte",
            "Measured p-latency of the most recent window.",
            last.measured_latency_us_per_byte,
        )
        gauge(
            "cstream_window_latency_residual_us_per_byte",
            "Model-vs-measured latency residual of the most recent window.",
            last.latency_residual_us_per_byte,
        )
        gauge(
            "cstream_window_energy_uj_per_byte",
            "Measured dynamic energy of the most recent window.",
            last.measured_energy_uj_per_byte,
        )
    violated = sum(1 for w in health.windows if w.violated)
    anomalous = sum(1 for w in health.windows if w.anomalous)
    lines.append(
        "# HELP cstream_windows_total Windows observed this session.")
    lines.append("# TYPE cstream_windows_total counter")
    lines.append(
        f'cstream_windows_total{{session="{label}"}} {len(health.windows)}')
    lines.append(
        "# HELP cstream_windows_violated_total Windows that violated "
        "the latency SLO.")
    lines.append("# TYPE cstream_windows_violated_total counter")
    lines.append(
        f'cstream_windows_violated_total{{session="{label}"}} {violated}')
    lines.append(
        "# HELP cstream_windows_anomalous_total Windows with an "
        "anomalous residual attribution.")
    lines.append("# TYPE cstream_windows_anomalous_total counter")
    lines.append(
        f'cstream_windows_anomalous_total{{session="{label}"}} {anomalous}')
    dominant = health.dominant()
    if dominant is not None:
        lines.append(
            "# HELP cstream_health_attribution_score Anomaly score of "
            "the session's dominant attribution.")
        lines.append("# TYPE cstream_health_attribution_score gauge")
        lines.append(
            f'cstream_health_attribution_score{{session="{label}",'
            f'kind="{_prom_escape(dominant.kind)}",'
            f'key="{_prom_escape(dominant.key)}"}} {dominant.score:.9g}')

    if registry is not None:
        snapshot = registry.snapshot()
        for name in sorted(snapshot.get("counters", {})):
            metric = "cstream_registry_" + name.replace(".", "_")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {snapshot['counters'][name]:.9g}")
        for name in sorted(snapshot.get("timers", {})):
            entry = snapshot["timers"][name]
            metric = "cstream_registry_" + name.replace(".", "_")
            lines.append(f"# TYPE {metric}_seconds summary")
            lines.append(f"{metric}_seconds_count {entry['count']}")
            lines.append(f"{metric}_seconds_sum {entry['total_s']:.9g}")
    return "\n".join(lines) + "\n"


def fleet_prometheus_text(health: FleetHealth) -> str:
    """Prometheus text-format exposition of a fleet's latest window.

    Per-board gauges (liveness, breaker state, max core load) and
    per-tenant gauges (SLO, modeled/measured latency, energy) carry the
    last window's values; fleet counters accumulate across the run.
    """
    fleet = _prom_escape(health.label)
    lines: List[str] = []
    lines.append(
        "# HELP cstream_fleet_windows_total Serving windows this run.")
    lines.append("# TYPE cstream_fleet_windows_total counter")
    lines.append(
        f'cstream_fleet_windows_total{{fleet="{fleet}"}} '
        f"{len(health.windows)}")
    lines.append(
        "# HELP cstream_fleet_violations_total Tenant-window SLO "
        "violations this run.")
    lines.append("# TYPE cstream_fleet_violations_total counter")
    lines.append(
        f'cstream_fleet_violations_total{{fleet="{fleet}"}} '
        f"{health.total_violations()}")
    for kind in ("shed", "failover", "rpc-failure"):
        metric = "cstream_fleet_" + kind.replace("-", "_") + "s_total"
        lines.append(f"# HELP {metric} Fleet {kind} events this run.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f'{metric}{{fleet="{fleet}"}} {len(health.events_of(kind))}')
    lines.append(
        "# HELP cstream_fleet_energy_budget_uj_per_window Fleet energy "
        "budget, microjoules per window.")
    lines.append("# TYPE cstream_fleet_energy_budget_uj_per_window gauge")
    lines.append(
        f'cstream_fleet_energy_budget_uj_per_window{{fleet="{fleet}"}} '
        f"{health.energy_budget_uj_per_window:.9g}")
    if not health.windows:
        return "\n".join(lines) + "\n"
    last = health.windows[-1]
    lines.append(
        "# HELP cstream_fleet_board_alive Board liveness in the most "
        "recent window (1 alive, 0 dead).")
    lines.append("# TYPE cstream_fleet_board_alive gauge")
    for board in last.boards:
        lines.append(
            f'cstream_fleet_board_alive{{fleet="{fleet}",'
            f'board="{_prom_escape(board.name)}"}} '
            f"{1 if board.alive else 0}")
    lines.append(
        "# HELP cstream_fleet_board_breaker_open Circuit breaker state "
        "in the most recent window (1 open, 0.5 half-open, 0 closed).")
    lines.append("# TYPE cstream_fleet_board_breaker_open gauge")
    breaker_value = {"closed": 0.0, "half-open": 0.5, "open": 1.0}
    for board in last.boards:
        lines.append(
            f'cstream_fleet_board_breaker_open{{fleet="{fleet}",'
            f'board="{_prom_escape(board.name)}"}} '
            f"{breaker_value[board.breaker_state]:.9g}")
    lines.append(
        "# HELP cstream_fleet_board_max_core_load Most-loaded core "
        "utilization in the most recent window.")
    lines.append("# TYPE cstream_fleet_board_max_core_load gauge")
    for board in last.boards:
        lines.append(
            f'cstream_fleet_board_max_core_load{{fleet="{fleet}",'
            f'board="{_prom_escape(board.name)}"}} '
            f"{board.max_core_load:.9g}")
    lines.append(
        "# HELP cstream_fleet_tenant_l_set_us_per_byte Tenant latency "
        "SLO (L_set), microseconds per byte.")
    lines.append("# TYPE cstream_fleet_tenant_l_set_us_per_byte gauge")
    for tenant in last.tenants:
        lines.append(
            f'cstream_fleet_tenant_l_set_us_per_byte{{fleet="{fleet}",'
            f'tenant="{_prom_escape(tenant.name)}"}} '
            f"{tenant.l_set_us_per_byte:.9g}")
    lines.append(
        "# HELP cstream_fleet_tenant_latency_us_per_byte Measured "
        "tenant latency in the most recent window (running tenants).")
    lines.append("# TYPE cstream_fleet_tenant_latency_us_per_byte gauge")
    for tenant in last.tenants:
        if tenant.state != "running":
            continue
        lines.append(
            f'cstream_fleet_tenant_latency_us_per_byte{{fleet="{fleet}",'
            f'tenant="{_prom_escape(tenant.name)}"}} '
            f"{tenant.measured_latency_us_per_byte:.9g}")
    lines.append(
        "# HELP cstream_fleet_tenant_energy_uj_per_byte Modeled tenant "
        "energy in the most recent window (running tenants).")
    lines.append("# TYPE cstream_fleet_tenant_energy_uj_per_byte gauge")
    for tenant in last.tenants:
        if tenant.state != "running":
            continue
        lines.append(
            f'cstream_fleet_tenant_energy_uj_per_byte{{fleet="{fleet}",'
            f'tenant="{_prom_escape(tenant.name)}"}} '
            f"{tenant.modeled_energy_uj_per_byte:.9g}")
    lines.append(
        "# HELP cstream_fleet_tenant_violated Tenant SLO violation in "
        "the most recent window (1 violated).")
    lines.append("# TYPE cstream_fleet_tenant_violated gauge")
    for tenant in last.tenants:
        lines.append(
            f'cstream_fleet_tenant_violated{{fleet="{fleet}",'
            f'tenant="{_prom_escape(tenant.name)}"}} '
            f"{1 if tenant.violated else 0}")
    return "\n".join(lines) + "\n"


def render_top(
    windows: Sequence[WindowHealth],
    latency_constraint_us_per_byte: Optional[float] = None,
    limit: int = 12,
) -> str:
    """``cstream top``-style terminal view over a health stream."""
    header = (
        f"{'win':>4} {'measured':>10} {'predicted':>10} "
        f"{'residual':>10} {'slo':>4} {'health':<28}"
    )
    rule = "-" * len(header)
    rows: List[str] = [header, rule]
    for window in list(windows)[-limit:]:
        if window.violated:
            slo = "VIOL"
        elif (
            latency_constraint_us_per_byte is not None
            and window.measured_latency_us_per_byte
            > latency_constraint_us_per_byte
        ):
            slo = "edge"
        else:
            slo = "ok"
        if window.attribution is not None:
            health = (
                f"{window.attribution.describe()} "
                f"(score {window.attribution.score:.1f}, "
                f"conf {window.attribution.confidence:.2f})"
            )
        elif window.anomalous:
            health = "anomalous"
        else:
            health = "nominal"
        rows.append(
            f"{window.window_index:>4} "
            f"{window.measured_latency_us_per_byte:>10.4f} "
            f"{window.predicted_latency_us_per_byte:>10.4f} "
            f"{window.latency_residual_us_per_byte:>+10.4f} "
            f"{slo:>4} {health:<28}"
        )
    violated = sum(1 for w in windows if w.violated)
    anomalous = sum(1 for w in windows if w.anomalous)
    rows.append(rule)
    rows.append(
        f"windows={len(windows)} violated={violated} anomalous={anomalous}"
    )
    return "\n".join(rows)


def render_fleet_top(health: FleetHealth, limit: int = 8) -> str:
    """``cstream top``-style terminal view over a fleet health report.

    Shows the most recent window's board table (liveness, breaker,
    load) and tenant table (placement, SLO, measured latency, energy),
    then the tail of the event log.
    """
    rows: List[str] = [
        f"fleet {health.label} arm={health.arm} seed={health.seed} "
        f"boards={health.board_count} tenants={health.tenant_count} "
        f"windows={len(health.windows)} "
        f"violations={health.total_violations()}"
    ]
    if not health.windows:
        return "\n".join(rows)
    last = health.windows[-1]
    rows.append(f"window {last.window_index}")
    board_header = (
        f"  {'board':<12} {'kind':<8} {'state':<6} {'breaker':<9} "
        f"{'load':>6} {'run':>4} {'rpcfail':>7}"
    )
    rows.append(board_header)
    rows.append("  " + "-" * (len(board_header) - 2))
    for board in last.boards:
        state = "alive" if board.alive else "DEAD"
        throttle = (
            f" @{board.throttled_mhz:.0f}MHz"
            if board.throttled_mhz is not None else ""
        )
        rows.append(
            f"  {board.name:<12} {board.kind:<8} {state:<6} "
            f"{board.breaker_state:<9} {board.max_core_load:>6.2f} "
            f"{board.tenants_running:>4} {board.rpc_failures:>7}"
            f"{throttle}"
        )
    tenant_header = (
        f"  {'tenant':<18} {'prio':>4} {'state':<9} {'board':>5} "
        f"{'L_set':>8} {'measured':>9} {'uJ/B':>8} {'slo':>4}"
    )
    rows.append(tenant_header)
    rows.append("  " + "-" * (len(tenant_header) - 2))
    for tenant in last.tenants:
        board = (
            str(tenant.board_index)
            if tenant.board_index is not None else "-"
        )
        if tenant.state == "running":
            measured = f"{tenant.measured_latency_us_per_byte:>9.4f}"
            energy = f"{tenant.modeled_energy_uj_per_byte:>8.4f}"
        else:
            measured = f"{'-':>9}"
            energy = f"{'-':>8}"
        slo = "VIOL" if tenant.violated else "ok"
        rows.append(
            f"  {tenant.name:<18} {tenant.priority:>4} "
            f"{tenant.state:<9} {board:>5} "
            f"{tenant.l_set_us_per_byte:>8.4f} {measured} {energy} "
            f"{slo:>4}"
        )
    tail = list(health.events)[-limit:]
    if tail:
        rows.append(f"  last {len(tail)} events:")
        for event in tail:
            who = []
            if event.tenant_id is not None:
                who.append(f"tenant {event.tenant_id}")
            if event.board_index is not None:
                who.append(f"board {event.board_index}")
            subject = " ".join(who) if who else "fleet"
            rows.append(
                f"    w{event.window_index:<3} {event.kind:<13} "
                f"{subject}: {event.detail}"
            )
    return "\n".join(rows)
