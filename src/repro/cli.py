"""Command-line interface: ``python -m repro`` or the ``cstream`` script.

Subcommands
-----------

``compress`` / ``decompress``
    Real file (de)compression with any of the paper's codecs, using the
    framed multi-batch stream format.
``plan``
    Profile a workload, decompose it and print the asymmetry-aware plan
    with a per-core occupancy chart.
``simulate``
    Measure a (workload, mechanism) pair on a simulated board and print
    energy / latency / CLCV.
``trace``
    Run one (workload, mechanism) cell with structured tracing on and
    write a Chrome trace-event / Perfetto JSON plus a summary table
    (context switches/MB, migrations, DVFS transitions, occupancy).
``bench``
    Regenerate the paper's tables and figures (same as
    ``python -m repro.bench``), with ``--jobs N`` process-parallel grid
    execution, a ``--cache-dir`` persistent result cache and a
    ``--trace-dir`` that traces every computed cell.
``adapt``
    Run the online control loop on a drifting workload and compare the
    adaptive session (drift detection, warm-started replanning,
    migration-gated plan adoption) against the static one-shot plan.
``chaos``
    Inject a fault scenario (core failure, DVFS throttle, stall,
    interconnect degradation, batch corruption) mid-session and compare
    the adaptive controller's failover/diagnosis recovery against the
    static plan limping along on emergency reroutes. The residual
    ledger's health report prints per-window attributions;
    ``--health-out`` streams them as NDJSON for ``cstream top``.
``serve``
    Run the simulated serving fleet: heterogeneous boards behind a
    gateway with admission control, load shedding, retry/backoff, a
    per-board circuit breaker and cross-board failover. ``--compare``
    runs the static / shed / shed-failover arms over the same tenant
    catalogue and fault plan; ``--health-out`` writes the fleet health
    report (schema v2) for ``cstream top`` and
    ``python -m repro.obs.check --health``.
``top``
    Live view over a session health NDJSON tail (or a full health
    JSON): per-window measured/predicted latency, residual, SLO state
    and the implicated component. Fleet health reports written by
    ``cstream serve --health-out`` render as a board/tenant dashboard
    instead. ``--prom`` additionally writes a Prometheus-style text
    exposition in either mode.
``analyze``
    Run the static-analysis suite: the determinism linter
    (``repro.analysis.lint``, rules CSA001-CSA009) over source paths
    and, optionally, the trace/health invariant verifier
    (``repro.analysis.verify``, TRC001-TRC007 and HLT001-HLT003) over
    exported artifacts.
``boards``
    List the available simulated boards.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.harness import Harness, WorkloadSpec
from repro.compression import CODEC_NAMES, get_codec
from repro.compression.stream import CompressionSession, DecompressionSession
from repro.core.baselines import MECHANISM_NAMES, get_mechanism
from repro.core.scheduler import Scheduler
from repro.datasets import DATASET_NAMES, DRIFT_KINDS
from repro.errors import ReproError
from repro.faults.chaos import CHAOS_SCENARIOS
from repro.faults.fleet import FLEET_SCENARIOS
from repro.fleet.scenario import FLEET_ARMS
from repro.runtime.visualize import render_gantt, render_plan
from repro.simcore.boards import jetson_tx2_like, rk3399

__all__ = ["main"]

_BOARDS = {"rk3399": rk3399, "jetson": jetson_tx2_like}

#: ``cstream adapt`` default L_set per board when --latency-constraint
#: is not given — chosen so the drift scenarios bind on each board
_ADAPT_DEFAULT_L_SET = {"rk3399": 20.0, "jetson": 8.0}

#: representative cells for ``cstream trace <experiment>`` — the
#: (codec, dataset) whose fig7/8-style measurements the figure leans on
_EXPERIMENT_CELLS = {
    "fig7": ("tcomp32", "rovio"),
    "fig8": ("tcomp32", "rovio"),
    "fig10": ("tcomp32", "sensor"),
    "fig11": ("tcomp32", "rovio"),
    "fig12": ("tcomp32", "stock"),
    "fig13": ("lz4", "rovio"),
    "fig14": ("tdic32", "rovio"),
    "fig15": ("tcomp32", "rovio"),
    "fig16": ("tcomp32", "rovio"),
    "fig17": ("tcomp32", "rovio"),
    "dag": ("unlz4", "rovio"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cstream",
        description="CStream: stream compression on asymmetric multicores",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compress = commands.add_parser("compress", help="compress a file")
    compress.add_argument("codec", choices=CODEC_NAMES)
    compress.add_argument("input")
    compress.add_argument("output")
    compress.add_argument("--batch-bytes", type=int, default=65536)

    decompress = commands.add_parser("decompress", help="decompress a file")
    decompress.add_argument("codec", choices=CODEC_NAMES)
    decompress.add_argument("input")
    decompress.add_argument("output")

    plan = commands.add_parser(
        "plan", help="show the asymmetry-aware plan for a workload"
    )
    plan.add_argument("codec", choices=CODEC_NAMES)
    plan.add_argument("dataset", choices=DATASET_NAMES)
    plan.add_argument("--board", choices=sorted(_BOARDS), default="rk3399")
    plan.add_argument("--latency-constraint", type=float, default=26.0,
                      help="L_set in µs/byte (default 26, the paper's)")
    plan.add_argument("--batch-bytes", type=int, default=65536)

    simulate = commands.add_parser(
        "simulate", help="measure a mechanism on the simulated board"
    )
    simulate.add_argument("codec", choices=CODEC_NAMES)
    simulate.add_argument("dataset", choices=DATASET_NAMES)
    simulate.add_argument("--mechanism", choices=MECHANISM_NAMES,
                          default="CStream")
    simulate.add_argument("--board", choices=sorted(_BOARDS), default="rk3399")
    simulate.add_argument("--latency-constraint", type=float, default=26.0)
    simulate.add_argument("--repetitions", type=int, default=50)
    simulate.add_argument("--gantt", action="store_true",
                          help="print a Gantt chart of the last run")

    trace = commands.add_parser(
        "trace",
        help="trace one simulated cell and write Chrome/Perfetto JSON",
    )
    trace.add_argument(
        "target", nargs="+",
        help="'CODEC DATASET' (e.g. tcomp32 rovio) or an experiment "
        f"id with a representative cell ({', '.join(sorted(_EXPERIMENT_CELLS))})",
    )
    trace.add_argument("--mechanism", choices=MECHANISM_NAMES,
                       default="CStream")
    trace.add_argument("--board", choices=sorted(_BOARDS), default="rk3399")
    trace.add_argument("--latency-constraint", type=float, default=26.0)
    trace.add_argument("--repetitions", type=int, default=1)
    trace.add_argument("--batch-bytes", type=int, default=None,
                       help="override the workload's batch size")
    trace.add_argument("--governor", default=None,
                       help="override the DVFS governor "
                       "(e.g. 'ondemand' to see transitions)")
    trace.add_argument("--out", default=None,
                       help="trace JSON path (default: <cell>.trace.json)")
    trace.add_argument("--process-events", action="store_true",
                       help="also record engine process resume/end "
                       "instants (verbose)")
    trace.add_argument("--gantt", action="store_true",
                       help="print a Gantt chart of the traced run")

    bench = commands.add_parser(
        "bench", help="regenerate the paper's tables and figures"
    )
    bench.add_argument("experiment", nargs="?",
                       help="experiment id, 'all', or 'report' "
                       "(omit to list)")
    bench.add_argument("--repetitions", type=int, default=None)
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes for grid cells "
                       "(default: REPRO_PARALLEL, else serial; "
                       "clamped to the core count)")
    bench.add_argument("--chunk", type=int, default=None,
                       help="grid cells per worker task "
                       "(default: auto)")
    bench.add_argument("--cache-dir", default=None,
                       help="persistent result cache "
                       "(default: REPRO_CACHE_DIR, else none)")
    bench.add_argument("--trace-dir", default=None,
                       help="write a Chrome trace JSON per computed "
                       "cell (default: REPRO_TRACE_DIR, else none)")
    bench.add_argument("--output", default="results.md",
                       help="report output path (only with 'report')")

    adapt = commands.add_parser(
        "adapt",
        help="run an adaptive vs static session on a drifting workload",
    )
    adapt.add_argument("--codec", choices=CODEC_NAMES, default="tcomp32")
    adapt.add_argument("--scenario", choices=DRIFT_KINDS,
                       default="phase-shift")
    adapt.add_argument("--board", choices=sorted(_BOARDS), default="rk3399")
    adapt.add_argument("--batches", type=int, default=18)
    adapt.add_argument("--window", type=int, default=3,
                       help="batches per control window")
    adapt.add_argument("--latency-constraint", type=float, default=None,
                       help="L_set in µs/byte (default: per board — "
                       "20.0 on rk3399, 8.0 on jetson)")
    adapt.add_argument("--low-range", type=int, default=500)
    adapt.add_argument("--high-range", type=int, default=50_000)
    adapt.add_argument("--horizon", type=int, default=4,
                       help="windows a migration must amortize over")
    adapt.add_argument("--out", default=None,
                       help="write the adaptive run's Chrome trace JSON")
    adapt.add_argument("--telemetry", action="store_true",
                       help="run the adaptive arm with the residual "
                       "ledger and print per-window health")
    adapt.add_argument("--health-out", default=None,
                       help="write per-window health NDJSON "
                       "(implies --telemetry)")

    chaos = commands.add_parser(
        "chaos",
        help="inject faults mid-session and compare static vs adaptive "
        "recovery",
    )
    chaos.add_argument("--codec", choices=CODEC_NAMES, default="tcomp32")
    chaos.add_argument("--dataset", choices=DATASET_NAMES, default="rovio")
    chaos.add_argument("--scenario", choices=CHAOS_SCENARIOS,
                       default="core-failure")
    chaos.add_argument("--board", choices=sorted(_BOARDS), default="rk3399")
    chaos.add_argument("--batches", type=int, default=18)
    chaos.add_argument("--window", type=int, default=3,
                       help="batches per control window")
    chaos.add_argument("--fault-batch", type=int, default=7,
                       help="batch boundary at which hardware faults fire")
    chaos.add_argument("--margin", type=float, default=1.35,
                       help="session L_set = static plan's modeled "
                       "latency x this margin")
    chaos.add_argument("--corruption-probability", type=float, default=0.15,
                       help="per-batch corruption probability for the "
                       "corruption scenarios (default 0.15)")
    chaos.add_argument("--out", default=None,
                       help="write the adaptive run's Chrome trace JSON")
    chaos.add_argument("--health-out", default=None,
                       help="write the adaptive arm's per-window health "
                       "NDJSON (for cstream top / CI artifacts)")

    serve = commands.add_parser(
        "serve",
        help="run the simulated serving fleet (admission, shedding, "
        "breaker, failover)",
    )
    serve.add_argument("--boards", type=int, default=3,
                       help="fleet size (board kinds cycle "
                       "rk3399/jetson/edge)")
    serve.add_argument("--tenants", type=int, default=6,
                       help="tenant catalogue size")
    serve.add_argument("--windows", type=int, default=12,
                       help="serving windows to run")
    serve.add_argument("--arm", choices=FLEET_ARMS, default="shed-failover",
                       help="gateway configuration (default shed-failover)")
    serve.add_argument("--compare", action="store_true",
                       help="run all three arms over the same catalogue "
                       "and fault plan and print the comparison")
    serve.add_argument("--scenario", choices=FLEET_SCENARIOS,
                       default="board-crash",
                       help="board-level fault plan (default board-crash)")
    serve.add_argument("--fault-board", type=int, default=0,
                       help="board index the fault hits")
    serve.add_argument("--at-window", type=int, default=3,
                       help="window at which the fault fires")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--top", action="store_true",
                       help="print the cstream-top dashboard of the "
                       "final window")
    serve.add_argument("--health-out", default=None,
                       help="write the fleet health report JSON "
                       "(schema v2; the --arm arm when --compare)")

    top = commands.add_parser(
        "top",
        help="live view over a session health NDJSON tail",
    )
    top.add_argument("health", metavar="HEALTH",
                     help="health NDJSON tail (or full health JSON) "
                     "written by cstream chaos/adapt --health-out, or "
                     "a fleet health JSON from cstream serve")
    top.add_argument("--follow", action="store_true",
                     help="keep re-reading the file like tail -f")
    top.add_argument("--interval", type=float, default=1.0,
                     help="poll interval with --follow (seconds)")
    top.add_argument("--limit", type=int, default=12,
                     help="windows shown (most recent first)")
    top.add_argument("--prom", default=None, metavar="FILE",
                     help="also write a Prometheus-style text exposition")

    analyze = commands.add_parser(
        "analyze",
        help="run the determinism linter (and optionally the trace "
        "invariant verifier)",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro "
        "package)",
    )
    analyze.add_argument("--trace", action="append", default=[],
                         metavar="TRACE.json",
                         help="also verify a trace file (repeatable)")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable output")
    analyze.add_argument("--report", default=None, metavar="FILE",
                         help="write the lint JSON report to FILE")
    analyze.add_argument("--strict", action="store_true",
                         help="fail on verifier warnings too")
    analyze.add_argument("--deep", action="store_true",
                         help="also run the whole-program determinism "
                         "taint and unit-consistency pass "
                         "(repro.analysis.flow)")
    analyze.add_argument("--deep-report", default=None, metavar="FILE",
                         help="write the flow JSON report to FILE "
                         "(implies --deep)")
    analyze.add_argument("--cache", default=None, metavar="FILE",
                         help="per-file AST/call-graph summary cache for "
                         "--deep, keyed on source hashes")

    commands.add_parser("boards", help="list simulated boards")
    return parser


def _command_compress(args) -> int:
    codec = get_codec(args.codec)
    session = CompressionSession(codec)
    word = 4  # all codecs consume whole 32-bit words
    batch_bytes = args.batch_bytes - args.batch_bytes % word
    started = time.time()
    with open(args.input, "rb") as source, open(args.output, "wb") as sink:
        tail = b""
        while True:
            chunk = source.read(batch_bytes)
            if not chunk:
                break
            usable = len(chunk) - len(chunk) % word
            tail = chunk[usable:]
            if usable:
                sink.write(session.write_batch(chunk[:usable]))
        if tail:
            # Pad the trailing partial word with zeros; record its size.
            padded = tail + b"\x00" * (word - len(tail))
            sink.write(session.write_batch(padded))
    elapsed = time.time() - started
    print(
        f"{session.frames_written} frames, ratio "
        f"{session.compression_ratio:.2f}, {elapsed:.2f}s"
    )
    return 0


def _command_decompress(args) -> int:
    codec = get_codec(args.codec)
    session = DecompressionSession(codec)
    with open(args.input, "rb") as source, open(args.output, "wb") as sink:
        while True:
            chunk = source.read(1 << 20)
            if not chunk:
                break
            for batch in session.feed(chunk):
                sink.write(batch)
        session.finish()
    print(f"{session.frames_read} frames decoded")
    return 0


def _command_plan(args) -> int:
    board = _BOARDS[args.board]()
    harness = Harness(board=board)
    spec = WorkloadSpec.of(
        args.codec,
        args.dataset,
        batch_size=args.batch_bytes,
        latency_constraint=args.latency_constraint,
    )
    context = harness.context(spec)
    profile = harness.profile(spec)
    print(f"board:          {board.name}")
    print(f"workload:       {spec.label} "
          f"(ratio {profile.compression_ratio:.2f})")
    print(f"decomposition:  {context.fine_graph.describe()}")
    model = context.cost_model(context.fine_graph)
    result = Scheduler(model).schedule(best_effort=True)
    print(f"plan:           {result.plan.describe()}")
    if not result.feasible:
        print("warning: no plan meets the constraint; showing best effort")
    print()
    print(render_plan(result.estimate, board))
    return 0


def _command_simulate(args) -> int:
    from repro.runtime.executor import ExecutionConfig, PipelineExecutor

    board = _BOARDS[args.board]()
    harness = Harness(board=board, repetitions=args.repetitions)
    spec = WorkloadSpec.of(
        args.codec, args.dataset, latency_constraint=args.latency_constraint
    )
    result = harness.run(spec, args.mechanism)
    print(f"{args.mechanism} on {spec.label} ({board.name}):")
    print(f"  energy:  {result.mean_energy_uj_per_byte:.3f} µJ/byte")
    print(f"  latency: {result.mean_latency_us_per_byte:.2f} µs/byte "
          f"(L_set {args.latency_constraint})")
    print(f"  CLCV:    {result.clcv:.2f} over {args.repetitions} runs")
    if args.gantt:
        context = harness.context(spec)
        outcome = get_mechanism(args.mechanism).prepare(context)
        profile = harness.profile(spec)
        executor = PipelineExecutor(
            board,
            ExecutionConfig(
                latency_constraint_us_per_byte=args.latency_constraint,
                repetitions=1,
                batches_per_repetition=5,
            ),
        )
        per_batch = (list(profile.per_batch_step_costs) * 5)[:5]
        executor.run(
            outcome.plan,
            per_batch,
            profile.batch_size_bytes,
            dynamics=outcome.dynamics,
        )
        print()
        print(render_gantt(executor.last_trace, board))
    return 0


def _resolve_trace_cell(target):
    """``['fig7']`` or ``['tcomp32', 'rovio']`` → (codec, dataset)."""
    if len(target) == 1:
        alias = target[0].lower()
        if alias in _EXPERIMENT_CELLS:
            return _EXPERIMENT_CELLS[alias]
        raise ReproError(
            f"unknown experiment {target[0]!r}; pass CODEC DATASET or one "
            f"of: {', '.join(sorted(_EXPERIMENT_CELLS))}"
        )
    if len(target) == 2:
        codec, dataset = target
        if codec not in CODEC_NAMES:
            raise ReproError(f"unknown codec {codec!r}")
        if dataset not in DATASET_NAMES:
            raise ReproError(f"unknown dataset {dataset!r}")
        return codec, dataset
    raise ReproError("trace takes one experiment id or 'CODEC DATASET'")


def _command_trace(args) -> int:
    from repro.obs.export import write_chrome_trace

    codec, dataset = _resolve_trace_cell(args.target)
    board = _BOARDS[args.board]()
    harness = Harness(board=board, repetitions=args.repetitions)
    spec_overrides = {"latency_constraint": args.latency_constraint}
    if args.batch_bytes is not None:
        spec_overrides["batch_size"] = args.batch_bytes
    spec = WorkloadSpec.of(codec, dataset, **spec_overrides)
    config_overrides = {}
    if args.governor is not None:
        config_overrides["governor"] = args.governor
    result, recorder = harness.run_traced(
        spec,
        args.mechanism,
        repetitions=args.repetitions,
        process_events=args.process_events,
        **config_overrides,
    )
    out = args.out or f"{spec.label}-{args.mechanism}.trace.json"
    write_chrome_trace(recorder, out, board=board)
    print(f"{args.mechanism} on {spec.label} ({board.name}):")
    print(f"  energy:  {result.mean_energy_uj_per_byte:.3f} µJ/byte")
    print(f"  latency: {result.mean_latency_us_per_byte:.2f} µs/byte")
    print()
    print(result.trace_summary.format(board=board))
    print()
    print(f"wrote {len(recorder.events)} events to {out} "
          "(open in https://ui.perfetto.dev or chrome://tracing)")
    if args.gantt:
        print()
        print(render_gantt(recorder, board))
    return 0


def _command_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = []
    if args.experiment:
        argv.append(args.experiment)
    if args.repetitions is not None:
        argv += ["--repetitions", str(args.repetitions)]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.chunk is not None:
        argv += ["--chunk", str(args.chunk)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.trace_dir is not None:
        argv += ["--trace-dir", args.trace_dir]
    if args.output != "results.md":
        argv += ["--output", args.output]
    return bench_main(argv)


def _print_health(health) -> None:
    if health is None:
        return
    anomalous = health.anomalous_windows()
    if not anomalous:
        print("  health: nominal (no anomalous windows)")
        return
    for window in anomalous:
        attribution = window.attribution
        print(
            f"  window {window.window_index}: "
            f"{attribution.describe()} "
            f"(score {attribution.score:.1f}, "
            f"confidence {attribution.confidence:.2f}, "
            f"residual {attribution.residual_us_per_byte:+.4f} µs/byte)"
        )
    dominant = health.dominant()
    if dominant is not None:
        print(
            f"  health verdict: {dominant.describe()} "
            f"(score {dominant.score:.1f})"
        )


def _write_health(health, path: str) -> None:
    from repro.obs.live import NdjsonTail

    if health is None:
        print(f"no health report to write to {path}", file=sys.stderr)
        return
    with open(path, "w", encoding="utf-8") as stream:
        NdjsonTail(stream).emit_session(health)
    print(f"wrote {len(health.windows)} health windows to {path}")


def _command_adapt(args) -> int:
    from repro.control import (
        ControllerConfig,
        SessionSpec,
        run_adaptive_session,
    )
    from repro.obs.trace import TraceRecorder

    board = _BOARDS[args.board]()
    harness = Harness(board=board)
    latency_constraint = args.latency_constraint
    if latency_constraint is None:
        # The jetson's bigger cores clear rk3399's 20 µs/byte SLO even
        # statically; 8 µs/byte keeps the drift scenarios binding there.
        latency_constraint = _ADAPT_DEFAULT_L_SET[args.board]
    spec = SessionSpec(
        codec=args.codec,
        scenario=args.scenario,
        batches=args.batches,
        window_batches=args.window,
        latency_constraint=latency_constraint,
        low_range=args.low_range,
        high_range=args.high_range,
        controller=ControllerConfig(horizon_windows=args.horizon),
    )
    recorder = TraceRecorder() if args.out is not None else None
    telemetry = args.telemetry or args.health_out is not None
    comparison = run_adaptive_session(
        harness, spec, trace=recorder, telemetry=telemetry
    )
    print(
        f"{spec.codec} on drifting micro ({spec.scenario}, "
        f"range {spec.low_range} -> {spec.high_range}, "
        f"L_set={spec.latency_constraint} µs/byte, {board.name}):"
    )
    rows = [
        ("", "static", "adaptive"),
        (
            "energy (µJ/byte)",
            f"{comparison.static_energy_uj_per_byte:.4f}",
            f"{comparison.adaptive_energy_uj_per_byte:.4f}",
        ),
        (
            "violations",
            f"{comparison.static_violations}",
            f"{comparison.adaptive_violations}",
        ),
        (
            "steady-state violations",
            f"{comparison.static_steady_violations}",
            f"{comparison.adaptive_steady_violations}",
        ),
    ]
    for label, static_value, adaptive_value in rows:
        print(f"  {label:24s} {static_value:>10s} {adaptive_value:>10s}")
    print(
        f"  energy saving: {comparison.energy_saving:.1%}  "
        f"(replans: {comparison.adaptive.replans}, "
        f"adopted: {comparison.adaptive.plans_adopted}, "
        f"warm-start hits: {comparison.warm_start_hits})"
    )
    for event in comparison.controller_events:
        verdict = "adopt" if event.adopted else "keep"
        print(
            f"  window {event.window_index}: {verdict} ({event.reason}; "
            f"incumbent {event.incumbent_energy_uj_per_byte:.3f} vs "
            f"candidate {event.candidate_energy_uj_per_byte:.3f} µJ/byte, "
            f"pause {event.migration_pause_us / 1000.0:.1f} ms)"
        )
    if telemetry:
        _print_health(comparison.health)
    if args.health_out is not None:
        _write_health(comparison.health, args.health_out)
    if recorder is not None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(recorder, args.out, board=board)
        print(
            f"wrote {len(recorder.events)} events to {args.out} "
            f"({recorder.replans} replans, "
            f"{recorder.plan_migrations} migrations)"
        )
    return 0


def _command_chaos(args) -> int:
    from repro.faults.chaos import ChaosSpec, run_chaos_session
    from repro.obs.trace import TraceRecorder

    board = _BOARDS[args.board]()
    harness = Harness(board=board)
    spec = ChaosSpec(
        codec=args.codec,
        dataset=args.dataset,
        scenario=args.scenario,
        batches=args.batches,
        window_batches=args.window,
        fault_batch=args.fault_batch,
        latency_margin=args.margin,
        corruption_probability=args.corruption_probability,
    )
    recorder = TraceRecorder() if args.out is not None else None
    comparison = run_chaos_session(harness, spec, trace=recorder)
    print(
        f"{spec.codec}/{spec.dataset} under {spec.scenario} on "
        f"{board.name} (victim core {comparison.victim_core}, "
        f"L_set={comparison.l_set_us_per_byte:.2f} µs/byte):"
    )

    def _recovery(value) -> str:
        if value is None:
            return "-"
        return f"{value / 1000.0:.0f} ms"

    rows = [
        ("", "static", "adaptive"),
        (
            "violations",
            f"{comparison.static_violations}",
            f"{comparison.adaptive_violations}",
        ),
        (
            "steady-state violations",
            f"{comparison.static_steady_violations}",
            f"{comparison.adaptive_steady_violations}",
        ),
        (
            "recovery latency",
            _recovery(comparison.static_recovery_us),
            _recovery(comparison.adaptive_recovery_us),
        ),
        (
            "energy overhead",
            f"{comparison.static_energy_overhead:.1%}",
            f"{comparison.adaptive_energy_overhead:.1%}",
        ),
    ]
    for label, static_value, adaptive_value in rows:
        print(f"  {label:24s} {static_value:>10s} {adaptive_value:>10s}")
    for event in comparison.failover_events:
        print(
            f"  window {event.window_index}: failover "
            f"(dead cores {list(event.failed_cores)}, "
            f"throttled {list(event.throttled_cores)}, "
            f"pause {event.pause_us / 1000.0:.1f} ms)"
        )
    _print_health(comparison.health)
    if args.health_out is not None:
        _write_health(comparison.health, args.health_out)
    print(f"  final adaptive plan: {comparison.adaptive.final_plan_description}")
    if recorder is not None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(recorder, args.out, board=board)
        print(
            f"wrote {len(recorder.events)} events to {args.out} "
            f"({recorder.core_failures} core failures, "
            f"{recorder.corrupted_batches} corrupted batches, "
            f"{recorder.batch_retries} retries)"
        )
    return 0


def _command_serve(args) -> int:
    from repro.fleet.scenario import (
        FleetScenarioSpec,
        run_fleet_arm,
        run_fleet_scenario,
        summarize_arm,
    )
    from repro.obs.live import render_fleet_top

    spec = FleetScenarioSpec(
        boards=args.boards,
        tenants=args.tenants,
        windows=args.windows,
        scenario=args.scenario,
        fault_board=args.fault_board,
        at_window=args.at_window,
        seed=args.seed,
    )
    print(
        f"fleet: {spec.boards} boards, {spec.tenants} tenants, "
        f"{spec.windows} windows, scenario {spec.scenario} "
        f"(board {spec.fault_board} at window {spec.at_window}), "
        f"seed {spec.seed}"
    )

    def _summary_row(summary) -> str:
        lag = (
            f"{summary.failover_lag_windows}w"
            if summary.failover_lag_windows is not None else "-"
        )
        return (
            f"  {summary.arm:14s} adm={summary.tenants_admitted} "
            f"rej={summary.tenants_rejected} "
            f"viol={summary.total_violations} "
            f"steady={summary.steady_violations} "
            f"sheds={summary.sheds} failovers={summary.failovers} "
            f"lag={lag} energy={summary.energy_uj:.0f}µJ"
        )

    if args.compare:
        comparison = run_fleet_scenario(spec)
        for summary in comparison.summaries:
            print(_summary_row(summary))
        health = comparison.healths[args.arm]
    else:
        health = run_fleet_arm(spec, args.arm)
        print(_summary_row(summarize_arm(health, spec)))
    if args.top:
        print(render_fleet_top(health))
    if args.health_out is not None:
        with open(args.health_out, "w", encoding="utf-8") as stream:
            stream.write(health.to_json())
        print(
            f"wrote fleet health ({health.arm}, "
            f"{len(health.windows)} windows, "
            f"{len(health.events)} events) to {args.health_out}"
        )
    return 0


def _command_top(args) -> int:
    import time

    from repro.obs.health import FleetHealth, SessionHealth
    from repro.obs.live import (
        fleet_prometheus_text,
        prometheus_text,
        read_ndjson,
        render_fleet_top,
        render_top,
    )

    def _load():
        """(windows, session) from NDJSON tail or a full health JSON."""
        with open(args.health, "r", encoding="utf-8") as stream:
            text = stream.read()
        stripped = text.lstrip()
        if stripped.startswith("{") and '"schema_version": 2' in stripped:
            return None, FleetHealth.from_json(text)
        if stripped.startswith("{") and '"windows"' in stripped:
            session = SessionHealth.from_json(text)
            return list(session.windows), session
        windows = read_ndjson(text.splitlines())
        session = SessionHealth(
            label=os.path.basename(args.health),
            board="unknown",
            latency_constraint_us_per_byte=0.0,
            windows=tuple(windows),
        )
        return windows, session

    def _render_once() -> None:
        windows, session = _load()
        if windows is None:
            print(render_fleet_top(session, limit=args.limit))
            if args.prom is not None:
                with open(args.prom, "w", encoding="utf-8") as stream:
                    stream.write(fleet_prometheus_text(session))
            return
        constraint = (
            session.latency_constraint_us_per_byte
            if session.latency_constraint_us_per_byte > 0.0
            else None
        )
        print(render_top(windows, constraint, limit=args.limit))
        if args.prom is not None:
            with open(args.prom, "w", encoding="utf-8") as stream:
                stream.write(prometheus_text(session))

    if not args.follow:
        _render_once()
        return 0
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            _render_once()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _command_analyze(args) -> int:
    import repro
    from repro.analysis import lint, verify

    paths = args.paths or [os.path.dirname(repro.__file__)]
    lint_args = list(paths)
    if args.as_json:
        lint_args.append("--json")
    if args.report:
        lint_args += ["--report", args.report]
    status = lint.main(lint_args)
    if args.trace:
        verify_args = list(args.trace)
        if args.as_json:
            verify_args.append("--json")
        if args.strict:
            verify_args.append("--strict")
        status = max(status, verify.main(verify_args))
    if args.deep or args.deep_report or args.cache:
        from repro.analysis import flow

        # The flow pass analyses one package root; honour an explicit
        # directory argument, otherwise the installed package.
        if len(paths) == 1 and os.path.isdir(paths[0]):
            flow_args = [paths[0]]
        else:
            flow_args = [os.path.dirname(repro.__file__)]
        if args.as_json:
            flow_args.append("--json")
        if args.deep_report:
            flow_args += ["--report", args.deep_report]
        if args.cache:
            flow_args += ["--cache", args.cache]
        status = max(status, flow.main(flow_args))
    return status


def _command_boards(args) -> int:
    for name, factory in sorted(_BOARDS.items()):
        board = factory()
        little = len(board.little_core_ids)
        big = len(board.big_core_ids)
        print(f"{name:10s} {board.name} — {little} little + {big} big cores")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "compress": _command_compress,
        "decompress": _command_decompress,
        "plan": _command_plan,
        "simulate": _command_simulate,
        "trace": _command_trace,
        "bench": _command_bench,
        "adapt": _command_adapt,
        "chaos": _command_chaos,
        "serve": _command_serve,
        "top": _command_top,
        "analyze": _command_analyze,
        "boards": _command_boards,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
