"""Chaos experiment: fault injection vs the recovery mechanisms.

Not a figure from the paper — the robustness counterpart to
:mod:`repro.bench.exp_adaptive`. Each row is one fault scenario from
:data:`repro.faults.chaos.CHAOS_SCENARIOS` on one board; columns
compare the static one-shot plan (surviving only on the runtime's
emergency reroutes and retries) against the adaptive session (whose
:class:`~repro.control.controller.SessionController` failover path
replans over the surviving cores, and whose residual-ledger diagnosis
path replans around signal-free faults) on constraint violations,
sustained recovery latency and the energy overhead each arm pays
versus the fault-free baseline. The grid runs on both simulated boards
(RK3399 and the Jetson-TX2-like spec). The per-(board, scenario)
:class:`ChaosComparison` objects land in the extras for deeper
inspection, alongside each adaptive arm's dominant residual
attribution.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import Harness, default_harness
from repro.faults.chaos import CHAOS_SCENARIOS, ChaosSpec, run_chaos_session
from repro.simcore.boards import jetson_tx2_like, rk3399

__all__ = ["chaos_recovery"]

#: board label -> factory; the chaos grid runs on every entry
CHAOS_BOARDS = (("rk3399", rk3399), ("jetson", jetson_tx2_like))


def _latency_ms(value: Optional[float]) -> str:
    if value is None:
        return "never"
    return f"{value / 1000.0:.0f}"


def _dominant(comparison) -> str:
    if comparison.health is None:
        return "-"
    attribution = comparison.health.dominant()
    if attribution is None:
        return "none"
    return f"{attribution.kind}:{attribution.key}"


def chaos_recovery(
    harness: Optional[Harness] = None,
    batches: int = 18,
    window_batches: int = 3,
    fault_batch: int = 7,
    latency_margin: float = 1.35,
) -> ExperimentResult:
    """Static vs adaptive violations/recovery/energy per fault scenario.

    ``harness`` only pins the seed/repetition policy; the board axis is
    swept internally (:data:`CHAOS_BOARDS`) so both asymmetric layouts
    appear in the table.
    """
    base = harness or default_harness()
    rows = []
    extras = {"comparisons": {}, "failovers": {}, "attributions": {}}
    for board_label, board_factory in CHAOS_BOARDS:
        board_harness = Harness(
            board=board_factory(),
            seed=base.seed,
            repetitions=base.repetitions,
        )
        for scenario in CHAOS_SCENARIOS:
            comparison = run_chaos_session(
                board_harness,
                ChaosSpec(
                    scenario=scenario,
                    batches=batches,
                    window_batches=window_batches,
                    fault_batch=fault_batch,
                    latency_margin=latency_margin,
                ),
            )
            key = (board_label, scenario)
            extras["comparisons"][key] = comparison
            extras["failovers"][key] = [
                (event.window_index, event.failed_cores,
                 event.throttled_cores)
                for event in comparison.failover_events
            ]
            extras["attributions"][key] = _dominant(comparison)
            rows.append(
                (
                    board_label,
                    scenario,
                    f"{comparison.static_steady_violations}",
                    f"{comparison.adaptive_steady_violations}",
                    _latency_ms(comparison.static_recovery_us),
                    _latency_ms(comparison.adaptive_recovery_us),
                    f"{comparison.static_energy_overhead:.1%}",
                    f"{comparison.adaptive_energy_overhead:.1%}",
                    _dominant(comparison),
                )
            )
    failure = extras["comparisons"][("rk3399", "core-failure")]
    return ExperimentResult(
        experiment_id="chaos",
        title=(
            "fault injection and recovery (tcomp32-rovio, "
            f"L_set = static latency x {latency_margin}, "
            f"fault at batch {fault_batch}, "
            f"{window_batches}-batch windows)"
        ),
        headers=(
            "board", "scenario",
            "steady CLCV static", "steady CLCV adaptive",
            "recovery static (ms)", "recovery adaptive (ms)",
            "E overhead static", "E overhead adaptive",
            "dominant attribution",
        ),
        rows=rows,
        note=(
            "core-failure: the static plan never meets L_set again "
            f"({failure.static_steady_violations} steady violations, "
            f"{failure.static_energy_overhead:.0%} energy overhead on "
            "emergency reroutes); the adaptive controller replans onto "
            "the surviving cores and recovers in "
            f"{_latency_ms(failure.adaptive_recovery_us)} ms. Transient "
            "stalls self-heal in both arms. Interconnect and pure "
            "corruption faults emit no dead/throttled-core heartbeat; "
            "the adaptive arm's residual ledger attributes the "
            "model-vs-measured gap to the degraded link or retry-heavy "
            "stage and replans around it (reason=diagnosis), while the "
            "static arm leans on the runtime's retry path alone"
        ),
        extras=extras,
    )
