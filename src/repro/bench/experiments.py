"""Common experiment-result structure and registry plumbing.

Every experiment function takes an optional :class:`Harness` plus
experiment-specific knobs and returns an :class:`ExperimentResult` whose
rows mirror the corresponding table/figure of the paper. The module
:mod:`repro.bench` assembles the id → function registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table

__all__ = ["ExperimentResult", "prefetch_grid"]


def prefetch_grid(
    harness,
    specs: Sequence,
    mechanisms: Sequence[str],
    repetitions: Optional[int] = None,
    **config_overrides,
):
    """Warm the harness caches for a (workload × mechanism) grid.

    Grid-shaped experiments call this before their per-cell read-out
    loops: it routes the whole grid through :meth:`Harness.grid`, so a
    parallel harness (``REPRO_PARALLEL`` / ``--jobs``) computes the
    cells across worker processes and the subsequent ``harness.run``
    reads are in-memory cache hits. On a serial harness this is exactly
    the old cell-by-cell loop.
    """
    if repetitions is not None:
        config_overrides["repetitions"] = repetitions
    return harness.grid(list(specs), list(mechanisms), **config_overrides)


@dataclass
class ExperimentResult:
    """Rows regenerating one table or figure of the paper."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    note: str = ""
    #: free-form extras (fitted params, plan strings, ...) for tests
    extras: Dict = field(default_factory=dict)

    def render(self) -> str:
        return format_table(
            f"{self.experiment_id}: {self.title}",
            self.headers,
            self.rows,
            note=self.note,
        )

    def column(self, header: str) -> List:
        """Extract one column by header name (test helper)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]
