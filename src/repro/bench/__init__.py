"""Experiment harness and the registry of the paper's tables/figures.

Every entry of :data:`EXPERIMENTS` regenerates one table or figure of
the paper's evaluation; ``python -m repro.bench fig7`` prints it.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bench.exp_adaptive import adaptive_drift
from repro.bench.exp_ablations import (
    abl_boards,
    abl_fusion,
    abl_guard_band,
    abl_regulator,
    abl_thermal,
)
from repro.bench.exp_chaos import chaos_recovery
from repro.bench.exp_dag import dag_decompression
from repro.bench.exp_fleet import fleet_capacity
from repro.bench.exp_endtoend import (
    fig05_state_sharing,
    fig07_energy,
    fig08_clcv,
    fig09_adaptivity,
)
from repro.bench.exp_microbench import (
    fig03_roofline,
    tab02_interconnect,
    tab04_task_comparison,
    tab05_model_accuracy,
)
from repro.bench.exp_sensitivity import (
    fig10_latency_constraint,
    fig11_batch_size,
    fig12_vocabulary_duplication,
    fig13_symbol_duplication,
    fig14_dynamic_range,
)
from repro.bench.exp_system import (
    fig15_static_frequency,
    fig16_dvfs,
    fig17_breakdown,
)
from repro.bench.experiments import ExperimentResult
from repro.bench.harness import (
    Harness,
    WorkloadSpec,
    default_harness,
    format_table,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Harness",
    "WorkloadSpec",
    "default_harness",
    "format_table",
    "run_experiment",
]

#: experiment id -> callable(harness=None, ...) -> ExperimentResult
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig03_roofline,
    "tab2": tab02_interconnect,
    "fig5": fig05_state_sharing,
    "fig7": fig07_energy,
    "fig8": fig08_clcv,
    "fig9": fig09_adaptivity,
    "adaptive": adaptive_drift,
    "chaos": chaos_recovery,
    "fleet": fleet_capacity,
    "fig10": fig10_latency_constraint,
    "fig11": fig11_batch_size,
    "fig12": fig12_vocabulary_duplication,
    "fig13": fig13_symbol_duplication,
    "fig14": fig14_dynamic_range,
    "fig15": fig15_static_frequency,
    "fig16": fig16_dvfs,
    "fig17": fig17_breakdown,
    "tab4": tab04_task_comparison,
    "tab5": tab05_model_accuracy,
    # Beyond the paper: fork-join decompression workloads (DESIGN.md's
    # "DAG pipelines").
    "dag": dag_decompression,
    # Ablations of this reproduction's own design choices (not paper
    # figures; see DESIGN.md).
    "abl_guard": abl_guard_band,
    "abl_fusion": abl_fusion,
    "abl_regulator": abl_regulator,
    "abl_boards": abl_boards,
    "abl_thermal": abl_thermal,
}


def run_experiment(experiment_id: str, **options) -> ExperimentResult:
    """Run one experiment by its paper id (e.g. ``"fig7"``)."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return experiment(**options)
