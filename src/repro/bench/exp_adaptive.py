"""Adaptive experiment: the online control loop vs the static plan.

Not a figure from the paper — §V-D's future-work controller made real.
Each row is one drift scenario (ramp / burst / phase-shift of Micro's
dynamic range); columns compare the static one-shot plan against the
adaptive session (drift detection → warm-started incremental replan →
migration-gated adoption) on energy and constraint violations, with the
controller's decision log in the extras.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import Harness, default_harness
from repro.control import SessionSpec, run_adaptive_session
from repro.datasets import DRIFT_KINDS

__all__ = ["adaptive_drift"]


def adaptive_drift(
    harness: Optional[Harness] = None,
    batches: int = 18,
    window_batches: int = 3,
    latency_constraint: float = 20.0,
) -> ExperimentResult:
    """Adaptive vs static energy/violations across drift scenarios."""
    harness = harness or default_harness()
    rows = []
    extras = {"comparisons": {}, "events": {}}
    for scenario in DRIFT_KINDS:
        comparison = run_adaptive_session(
            harness,
            SessionSpec(
                scenario=scenario,
                batches=batches,
                window_batches=window_batches,
                latency_constraint=latency_constraint,
            ),
        )
        extras["comparisons"][scenario] = comparison
        extras["events"][scenario] = [
            (event.window_index, event.reason, event.adopted)
            for event in comparison.controller_events
        ]
        rows.append(
            (
                scenario,
                f"{comparison.static_energy_uj_per_byte:.4f}",
                f"{comparison.adaptive_energy_uj_per_byte:.4f}",
                f"{comparison.energy_saving:.1%}",
                f"{comparison.static_steady_violations}",
                f"{comparison.adaptive_steady_violations}",
                f"{comparison.adaptive.plans_adopted}",
                f"{comparison.warm_start_hits}",
            )
        )
    phase = extras["comparisons"]["phase-shift"]
    return ExperimentResult(
        experiment_id="adaptive",
        title=(
            f"online control loop under drift (tcomp32-micro, "
            f"L_set={latency_constraint} µs/byte, "
            f"{window_batches}-batch windows)"
        ),
        headers=(
            "scenario", "E static", "E adaptive", "saving",
            "steady CLCV static", "steady CLCV adaptive",
            "plans adopted", "warm-start hits",
        ),
        rows=rows,
        note=(
            f"phase-shift: adaptive saves {phase.energy_saving:.0%} energy "
            f"and cuts steady-state violations "
            f"{phase.static_steady_violations} -> "
            f"{phase.adaptive_steady_violations}; boundary batches pay the "
            "window-drain pipeline refill in both arms"
        ),
        extras=extras,
    )
