"""Markdown report generation: every experiment, one document.

``python -m repro.bench report [path]`` regenerates all registered
experiments (paper figures/tables plus this reproduction's ablations)
and writes a self-contained markdown report with the configuration used,
per-experiment tables and timing. This is the artifact a downstream user
attaches to a reproduction claim.
"""

from __future__ import annotations

import platform
import time
from typing import List, Optional

from repro.bench.harness import (
    DEFAULT_BATCH_BYTES,
    Harness,
)

__all__ = ["generate_report"]


def _as_markdown_table(headers, rows) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def generate_report(
    path: str,
    harness: Optional[Harness] = None,
    experiment_ids: Optional[List[str]] = None,
) -> str:
    """Run experiments and write the markdown report to ``path``.

    Returns the rendered report text. ``experiment_ids`` defaults to the
    full registry in its canonical order.
    """
    from repro.bench import EXPERIMENTS  # late import: avoids a cycle

    harness = harness or Harness()
    ids = experiment_ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    sections: List[str] = []
    total_started = time.time()
    for experiment_id in ids:
        experiment = EXPERIMENTS[experiment_id]
        started = time.time()
        try:
            result = experiment(harness)
        except TypeError:
            # A few experiments build their own harness internally.
            result = experiment()
        elapsed = time.time() - started
        sections.append(
            "\n".join(
                [
                    f"## {result.experiment_id}: {result.title}",
                    "",
                    _as_markdown_table(result.headers, result.rows),
                    "",
                    f"*{result.note}*" if result.note else "",
                    "",
                    f"_regenerated in {elapsed:.1f}s_",
                ]
            )
        )

    header = "\n".join(
        [
            "# CStream reproduction report",
            "",
            "Regenerated tables and figures of *Parallelizing Stream",
            "Compression for IoT Applications on Asymmetric Multicores*",
            "(ICDE 2023), plus this reproduction's ablations.",
            "",
            "| configuration | value |",
            "|---|---|",
            f"| board | {harness.board.name} |",
            f"| repetitions per cell | {harness.repetitions} |",
            f"| batch size | {DEFAULT_BATCH_BYTES} bytes |",
            f"| seed | {harness.seed} |",
            f"| python | {platform.python_version()} |",
            f"| generated | in {time.time() - total_started:.0f}s |",
            "",
        ]
    )
    text = header + "\n" + "\n\n".join(sections) + "\n"
    with open(path, "w") as sink:
        sink.write(text)
    return text
