"""Workload-sensitivity experiments: Figs 10-14 (paper §VII-B).

Procedure settings (latency constraint, batch size) are swept on
tcomp32-Rovio; data statistic properties (vocabulary duplication, symbol
duplication, dynamic range) are swept on the Micro dataset with the
algorithm most sensitive to each property.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.experiments import ExperimentResult, prefetch_grid
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.core.baselines import MECHANISM_NAMES

__all__ = [
    "fig10_latency_constraint",
    "fig11_batch_size",
    "fig12_vocabulary_duplication",
    "fig13_symbol_duplication",
    "fig14_dynamic_range",
]

#: large enough that fresh draws are unique and the duplication knobs
#: are not confounded by birthday collisions
_WIDE_RANGE = 1 << 28


def _sweep(
    harness: Harness,
    specs: Sequence[WorkloadSpec],
    labels: Sequence,
    repetitions: Optional[int],
    metric: str,
):
    prefetch_grid(harness, specs, MECHANISM_NAMES, repetitions)
    rows = []
    values = {}
    for label, spec in zip(labels, specs):
        row = [label]
        for mechanism in MECHANISM_NAMES:
            result = harness.run(spec, mechanism, repetitions=repetitions)
            value = (
                result.mean_energy_uj_per_byte
                if metric == "energy"
                else result.clcv
            )
            values[(label, mechanism)] = value
            row.append(f"{value:.3f}" if metric == "energy" else f"{value:.2f}")
        rows.append(tuple(row))
    return rows, values


def fig10_latency_constraint(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    constraints: Sequence[float] = (11.0, 14.0, 17.0, 20.0, 23.0, 26.0),
) -> ExperimentResult:
    """Fig 10: energy and CLCV of tcomp32-Rovio under varying L_set."""
    harness = harness or default_harness()
    specs = [
        WorkloadSpec.of("tcomp32", "rovio", latency_constraint=l)
        for l in constraints
    ]
    prefetch_grid(harness, specs, MECHANISM_NAMES, repetitions)
    rows = []
    values = {}
    for constraint, spec in zip(constraints, specs):
        row = [f"{constraint:.0f}"]
        for mechanism in MECHANISM_NAMES:
            result = harness.run(spec, mechanism, repetitions=repetitions)
            values[(constraint, mechanism, "E")] = result.mean_energy_uj_per_byte
            values[(constraint, mechanism, "CLCV")] = result.clcv
            row.append(
                f"{result.mean_energy_uj_per_byte:.3f}/{result.clcv:.2f}"
            )
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="fig10",
        title="impact of varying L_set, tcomp32-Rovio (cells: E µJ/B / CLCV)",
        headers=("L_set",) + MECHANISM_NAMES,
        rows=rows,
        note="CStream and CS save more energy as L_set loosens; CS cannot "
        "meet the tightest constraints",
        extras={"values": values},
    )


def fig11_batch_size(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    batch_sizes: Sequence[int] = (512, 2048, 8192, 32768, 131072),
) -> ExperimentResult:
    """Fig 11: energy of tcomp32-Rovio under varying batch size B."""
    harness = harness or default_harness()
    specs = [
        WorkloadSpec.of("tcomp32", "rovio", batch_size=b) for b in batch_sizes
    ]
    rows, values = _sweep(harness, specs, batch_sizes, repetitions, "energy")
    return ExperimentResult(
        experiment_id="fig11",
        title="impact of varying batch size B, tcomp32-Rovio (E µJ/B)",
        headers=("B (bytes)",) + MECHANISM_NAMES,
        rows=rows,
        note="energy is nearly flat once B is large enough; small batches "
        "pay per-message overheads (cache thrashing in the paper)",
        extras={"values": values},
    )


def fig12_vocabulary_duplication(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    duplications: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> ExperimentResult:
    """Fig 12: energy of lz4-Micro under varying vocabulary duplication."""
    harness = harness or default_harness()
    specs = [
        WorkloadSpec.of(
            "lz4",
            "micro",
            dataset_options={
                "dynamic_range": _WIDE_RANGE,
                "vocabulary_duplication": duplication,
            },
        )
        for duplication in duplications
    ]
    rows, values = _sweep(harness, specs, duplications, repetitions, "energy")
    return ExperimentResult(
        experiment_id="fig12",
        title="impact of vocabulary duplication, lz4-Micro (E µJ/B)",
        headers=("vocab dup",) + MECHANISM_NAMES,
        rows=rows,
        note="moderate duplication maximizes energy: many short matches "
        "pay s3's match-setup cost without shrinking the output much",
        extras={"values": values},
    )


def fig13_symbol_duplication(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    duplications: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> ExperimentResult:
    """Fig 13: energy of tdic32-Micro under varying symbol duplication."""
    harness = harness or default_harness()
    specs = [
        WorkloadSpec.of(
            "tdic32",
            "micro",
            dataset_options={
                "dynamic_range": _WIDE_RANGE,
                "symbol_duplication": duplication,
            },
        )
        for duplication in duplications
    ]
    rows, values = _sweep(harness, specs, duplications, repetitions, "energy")
    return ExperimentResult(
        experiment_id="fig13",
        title="impact of symbol duplication, tdic32-Micro (E µJ/B)",
        headers=("symbol dup",) + MECHANISM_NAMES,
        rows=rows,
        note="duplication drags s2's kappa into the little cores' 30-70 "
        "stall region (LO suffers) while shrinking total work (BO gains)",
        extras={"values": values},
    )


def fig14_dynamic_range(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    range_bits: Sequence[int] = (4, 8, 12, 16, 22, 30),
) -> ExperimentResult:
    """Fig 14: energy of tcomp32-Micro under varying dynamic range."""
    harness = harness or default_harness()
    specs = [
        WorkloadSpec.of(
            "tcomp32",
            "micro",
            dataset_options={"dynamic_range": 1 << bits},
        )
        for bits in range_bits
    ]
    labels = [f"2^{bits}" for bits in range_bits]
    rows, values = _sweep(harness, specs, labels, repetitions, "energy")
    return ExperimentResult(
        experiment_id="fig14",
        title="impact of dynamic range, tcomp32-Micro (E µJ/B)",
        headers=("range",) + MECHANISM_NAMES,
        rows=rows,
        note="wider symbols cost more arithmetic in s1 and more emitted "
        "bits in s2; CStream's margin narrows at the widest ranges",
        extras={"values": values},
    )
