"""Ablation studies beyond the paper's figures.

DESIGN.md calls out the reproduction's own design choices; these
experiments quantify them:

* ``abl_guard`` — the scheduler's guard band (accept plans only up to
  ``guard·L_set``): energy paid vs CLCV risk as the band tightens.
* ``abl_fusion`` — the fusion rule (§IV-B) vs never fusing and vs the
  fully fused (coarse) pipeline.
* ``abl_regulator`` — PID feedback (Eq 8) vs the statistics-aware
  controller the paper sketches as future work: batches-to-readapt and
  energy during the transient after a workload jump.
* ``abl_boards`` — the same workloads planned on the rk3399 vs a
  Jetson-TX2-class board (future-work hardware).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.compression import get_codec
from repro.core.adaptive import FeedbackRegulator
from repro.core.baselines import (
    CStreamMechanism,
    MechanismOutcome,
    WorkloadContext,
)
from repro.core.profiler import profile_workload
from repro.core.scheduler import Scheduler
from repro.core.statistics_regulator import StatisticsAwareRegulator
from repro.core.task import Task, TaskGraph
from repro.datasets import MicroDataset
from repro.runtime.executor import (
    ExecutionConfig,
    MechanismDynamics,
    PipelineExecutor,
)
from repro.simcore.boards import jetson_tx2_like, rk3399

__all__ = [
    "abl_guard_band",
    "abl_fusion",
    "abl_regulator",
    "abl_boards",
    "abl_thermal",
]


def abl_guard_band(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    bands: Sequence[float] = (1.0, 0.99, 0.95, 0.90),
) -> ExperimentResult:
    """Guard-band sweep on tcomp32-Rovio: tighter bands trade energy
    for certainty of meeting L_set."""
    harness = harness or default_harness()
    spec = WorkloadSpec.of("tcomp32", "rovio")
    context = harness.context(spec)
    rows = []
    values = {}
    for band in bands:
        model = context.cost_model(context.fine_graph, guard_band=band)
        result = Scheduler(model).schedule(best_effort=True)
        outcome = MechanismOutcome(
            mechanism=f"guard={band}",
            graph=context.fine_graph,
            plan=result.plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.01),
        )
        measured = harness.run_outcome(spec, outcome, repetitions=repetitions)
        values[band] = {
            "E": measured.mean_energy_uj_per_byte,
            "CLCV": measured.clcv,
            "headroom": 1.0
            - result.estimate.latency_us_per_byte / spec.latency_constraint,
        }
        rows.append(
            (
                f"{band:.2f}",
                f"{measured.mean_energy_uj_per_byte:.3f}",
                f"{measured.clcv:.2f}",
                f"{values[band]['headroom']:.1%}",
                result.plan.describe(),
            )
        )
    return ExperimentResult(
        experiment_id="abl_guard",
        title="scheduler guard-band ablation, tcomp32-Rovio",
        headers=("guard", "E (µJ/B)", "CLCV", "headroom", "plan"),
        rows=rows,
        note="the default 0.99 band is the loosest setting that keeps "
        "CLCV at zero given fit error plus runtime noise",
        extras={"values": values},
    )


def abl_fusion(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    workload: str = "tdic32",
) -> ExperimentResult:
    """Fusion-rule ablation: the §IV-B rule vs no fusion vs full fusion."""
    harness = harness or default_harness()
    spec = WorkloadSpec.of(workload, "rovio")
    context = harness.context(spec)
    profile = harness.profile(spec)

    unfused = TaskGraph(
        codec_name=profile.codec_name,
        tasks=tuple(
            Task(name=f"t{index}", step_ids=(step,), stage_index=index)
            for index, step in enumerate(profile.step_ids)
        ),
    )
    variants = (
        ("no fusion", unfused),
        ("fusion rule", context.fine_graph),
        ("fully fused", context.coarse_graph),
    )
    rows = []
    values = {}
    for label, graph in variants:
        model = context.cost_model(graph)
        result = Scheduler(model).schedule(best_effort=True)
        outcome = MechanismOutcome(
            mechanism=label,
            graph=graph,
            plan=result.plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.01),
        )
        measured = harness.run_outcome(spec, outcome, repetitions=repetitions)
        values[label] = {
            "E": measured.mean_energy_uj_per_byte,
            "L": measured.mean_latency_us_per_byte,
            "CLCV": measured.clcv,
            "stages": graph.stage_count,
        }
        rows.append(
            (
                label,
                graph.stage_count,
                f"{measured.mean_energy_uj_per_byte:.3f}",
                f"{measured.mean_latency_us_per_byte:.2f}",
                f"{measured.clcv:.2f}",
            )
        )
    return ExperimentResult(
        experiment_id="abl_fusion",
        title=f"fusion-rule ablation, {spec.label}",
        headers=("variant", "stages", "E (µJ/B)", "L (µs/B)", "CLCV"),
        rows=rows,
        note="fully fusing hides the task-core affinities and costs the "
        "most; in this calibration never fusing is marginally cheaper "
        "than the paper's rule (fusing the read step dilutes the encode "
        "step's kappa), at the price of one more task, queue and "
        "per-message overhead per batch — the rule is kept as the "
        "default for fidelity to the paper",
        extras={"values": values},
    )


def abl_regulator(
    harness: Optional[Harness] = None,
    latency_constraint: float = 20.0,
    batches: int = 12,
    change_at: int = 4,
) -> ExperimentResult:
    """PID (Eq 8) vs statistics-aware regulation after a range jump."""
    harness = harness or default_harness()
    batch_size = WorkloadSpec.of("tcomp32", "micro").batch_size
    spec = WorkloadSpec.of(
        "tcomp32",
        "micro",
        dataset_options={"dynamic_range": 500},
        latency_constraint=latency_constraint,
    )
    context = harness.context(spec)
    low_profile = harness.profile(spec)
    high_profile = profile_workload(
        get_codec("tcomp32"),
        MicroDataset(dynamic_range=50_000),
        batch_size,
        batches=batches - change_at,
        seed=harness.seed + 1,
    )
    stream = (
        list(low_profile.per_batch_step_costs)[:change_at]
        + list(high_profile.per_batch_step_costs)
    )[:batches]

    executor = PipelineExecutor(
        harness.board,
        ExecutionConfig(
            latency_constraint_us_per_byte=latency_constraint,
            repetitions=1,
            batches_per_repetition=3,
            warmup_batches=2,
            seed=harness.seed,
        ),
    )

    def run(kind: str):
        model = context.cost_model(context.fine_graph)
        if kind == "pid":
            regulator = FeedbackRegulator(model)
        else:
            regulator = StatisticsAwareRegulator(model)
        rng = np.random.default_rng(harness.seed)
        trace = []
        for index, costs in enumerate(stream):
            metrics = executor.run_single(
                regulator.plan, [costs] * 3, batch_size, rng
            )
            measurement = metrics[-1]
            if kind == "pid":
                regulator.observe(index, measurement.latency_us_per_byte)
            else:
                regulator.observe(index, costs)
            trace.append(measurement)
        violations = [m.batch_index for m in trace if m.violated]
        recovery = None
        for m in trace[change_at:]:
            if not m.violated:
                recovery = m.batch_index
                break
        return trace, violations, recovery

    rows = []
    extras = {}
    for kind, label in (("pid", "PID (Eq 8)"), ("stats", "statistics-aware")):
        trace, violations, recovery = run(kind)
        transient_energy = sum(
            m.energy_uj_per_byte for m in trace[change_at:]
        )
        extras[kind] = {
            "violations": violations,
            "recovery_batch": recovery,
            "transient_energy": transient_energy,
        }
        rows.append(
            (
                label,
                len(violations),
                recovery if recovery is not None else "never",
                f"{transient_energy:.3f}",
            )
        )
    return ExperimentResult(
        experiment_id="abl_regulator",
        title=(
            "regulator ablation: response to a dynamic-range jump at "
            f"batch {change_at} (tcomp32-Micro)"
        ),
        headers=(
            "controller", "violated batches", "recovered at",
            "post-jump energy (µJ/B summed)",
        ),
        rows=rows,
        note="the statistics-aware controller replans off the first "
        "drifted batch's counters; the PID needs Eq 8's three "
        "observations (the trade-off §V-D predicts)",
        extras=extras,
    )


def abl_boards(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """The same workloads planned on rk3399 vs a Jetson-TX2-class SoC."""
    repetitions = repetitions or 30
    rows = []
    values = {}
    for board in (rk3399(), jetson_tx2_like()):
        # Per-board harnesses (the keys differ by board fingerprint), but
        # share the caller's persistent cache so re-runs stay free.
        board_kwargs = {"board": board, "repetitions": repetitions}
        if harness is not None:
            board_kwargs["cache"] = harness.cache
        board_harness = Harness(**board_kwargs)
        for codec in ("tcomp32", "tdic32"):
            spec = WorkloadSpec.of(codec, "rovio")
            context = board_harness.context(spec)
            outcome = CStreamMechanism().prepare(context)
            result = board_harness.run_outcome(
                spec, outcome, repetitions=repetitions
            )
            key = (board.name, codec)
            values[key] = {
                "E": result.mean_energy_uj_per_byte,
                "L": result.mean_latency_us_per_byte,
                "CLCV": result.clcv,
            }
            rows.append(
                (
                    board.name.split(" (")[0],
                    codec,
                    outcome.description,
                    f"{result.mean_energy_uj_per_byte:.3f}",
                    f"{result.mean_latency_us_per_byte:.2f}",
                    f"{result.clcv:.2f}",
                )
            )
    return ExperimentResult(
        experiment_id="abl_boards",
        title="CStream across boards (future-work hardware)",
        headers=("board", "codec", "plan", "E (µJ/B)", "L (µs/B)", "CLCV"),
        rows=rows,
        note="both out-of-order clusters on the Jetson-class SoC flatten "
        "the asymmetry, so plans lean less on the big cores",
        extras={"values": values},
    )


def abl_thermal(
    harness: Optional[Harness] = None,
    latency_constraint: float = 26.0,
    batches: int = 12,
    throttle_at: int = 4,
    capped_mhz: float = 600.0,
) -> ExperimentResult:
    """Failure injection: a thermal cap hits the big cluster mid-stream.

    An IoT device in the sun throttles; the plan that used the big core
    for the encode stage starts violating the constraint. A static plan
    stays broken; the PID-regulated CStream detects the drift (it cannot
    know *why* the stage slowed) and replans onto the healthy cores.
    """
    harness = harness or default_harness()
    board = harness.board
    spec = WorkloadSpec.of(
        "tcomp32", "rovio", latency_constraint=latency_constraint
    )
    context = harness.context(spec)
    profile = harness.profile(spec)
    stream = (list(profile.per_batch_step_costs) * batches)[:batches]
    batch_bytes = profile.batch_size_bytes

    capped_map = {
        core_id: capped_mhz for core_id in board.big_core_ids
    }
    from repro.simcore.dvfs import StaticGovernor

    executor = PipelineExecutor(
        board,
        ExecutionConfig(
            latency_constraint_us_per_byte=latency_constraint,
            repetitions=1,
            batches_per_repetition=3,
            warmup_batches=2,
            seed=harness.seed,
        ),
    )

    def run(regulated: bool):
        model = context.cost_model(context.fine_graph)
        regulator = FeedbackRegulator(model)
        rng = np.random.default_rng(harness.seed)
        trace = []
        for index, costs in enumerate(stream):
            throttled = index >= throttle_at
            governor = StaticGovernor(
                board, capped_map if throttled else None
            )
            metrics = executor.run_single(
                regulator.plan, [costs] * 3, batch_bytes, rng,
                governor=governor,
            )
            measurement = metrics[-1]
            if regulated:
                regulator.observe(index, measurement.latency_us_per_byte)
            trace.append((index, measurement.violated))
        return trace

    rows = []
    extras = {}
    for label, regulated in (("static plan", False), ("PID-regulated", True)):
        trace = run(regulated)
        violations = [index for index, violated in trace if violated]
        recovery = next(
            (
                index
                for index, violated in trace[throttle_at:]
                if not violated
            ),
            None,
        )
        extras[label] = {"violations": violations, "recovery": recovery}
        rows.append(
            (
                label,
                len(violations),
                recovery if recovery is not None else "never",
            )
        )
    return ExperimentResult(
        experiment_id="abl_thermal",
        title=(
            f"thermal-throttling injection: big cores capped to "
            f"{capped_mhz:.0f} MHz after batch {throttle_at} (tcomp32-Rovio)"
        ),
        headers=("variant", "violated batches", "recovered at"),
        rows=rows,
        note="the regulator attributes the slowdown to the model's "
        "latency scale and replans away from the throttled cluster — "
        "failure recovery without a thermal sensor",
        extras=extras,
    )
