"""Content-addressed on-disk result store for the experiment harness.

The figure suite repeats identical simulations across bench invocations
and CI runs: Figs 7/8 alone are 6 mechanisms × 12 workloads × 100
repetitions, and every cell is a pure function of (board spec, workload
spec, mechanism, repetitions, seed, executor config). This module keys
each artifact by a stable digest of exactly those inputs plus a
code-version salt, and stores the pickled value under
``$REPRO_CACHE_DIR`` so a regenerated figure costs one ``os.stat`` and
one unpickle per cell instead of a DES run.

Guarantees:

* **content addressing** — the key is a SHA-256 over the canonical
  ``repr`` of the payload tuple, so two harnesses configured identically
  (even in different processes or CI runs) share entries, and *any*
  differing knob — a different board, repetition count, seed or
  executor override — lands on a different key (see
  ``Harness.run_key``);
* **versioning** — ``CACHE_VERSION`` salts every digest; bumping it on
  a behaviour-changing code change orphans all old entries at once
  instead of serving stale numbers;
* **atomicity** — values are written to a temp file in the destination
  directory and ``os.replace``d into place, so concurrent workers (the
  parallel grid executor) and interrupted runs never leave a torn
  entry visible;
* **self-healing** — an unreadable or corrupted entry is deleted and
  treated as a miss, so the worst case is a recompute, never a wrong
  result.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.obs.registry import REGISTRY

__all__ = [
    "CACHE_VERSION",
    "CACHE_DIR_ENV",
    "CacheStats",
    "ResultCache",
    "default_cache",
    "stable_digest",
]

#: Bump whenever simulator/codec/scheduler behaviour changes in a way
#: that alters measured numbers — or the pickled result schema grows
#: (v2: RunResult carries an optional TraceSummary); every persisted
#: key is salted with it.
CACHE_VERSION = "cstream-cache-v2"

#: Environment variable naming the cache directory; unset = no
#: persistent cache (the harness keeps its in-memory caches either way).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def stable_digest(payload: Any, salt: str = CACHE_VERSION) -> str:
    """SHA-256 of the canonical ``repr`` of ``(salt, payload)``.

    ``repr`` is deterministic for the key material the harness uses
    (nested tuples of str/int/float/bool/None and frozen dataclasses),
    unlike ``hash()`` which is randomized per process for strings.
    """
    return hashlib.sha256(repr((salt, payload)).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: corrupted/unreadable entries discarded (each also counts a miss)
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Directory-backed, content-addressed pickle store.

    Entries are sharded by the first two hex digits of the key to keep
    directory listings small for big grids.
    """

    def __init__(self, directory, salt: str = CACHE_VERSION) -> None:
        self.directory = Path(directory)
        self.salt = salt
        self.stats = CacheStats()
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------------

    def key(self, payload: Any) -> str:
        return stable_digest(payload, salt=self.salt)

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    # -- access --------------------------------------------------------------

    def get(self, payload: Any) -> Optional[Any]:
        """Load the entry for ``payload``, or None on miss/corruption."""
        with REGISTRY.timer("cache.get"):
            return self._get(payload)

    def _get(self, payload: Any) -> Optional[Any]:
        path = self.path_for(self.key(payload))
        try:
            with open(path, "rb") as source:
                value = pickle.load(source)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # A torn or stale-format entry: discard and recompute.
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return value

    def put(self, payload: Any, value: Any) -> None:
        """Atomically persist ``value`` under ``payload``'s key."""
        with REGISTRY.timer("cache.put"):
            self._put(payload, value)

    def _put(self, payload: Any, value: Any) -> None:
        path = self.path_for(self.key(payload))
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as sink:
                pickle.dump(value, sink, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, payload: Any) -> bool:
        return self.path_for(self.key(payload)).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.pkl"))


def default_cache() -> Optional[ResultCache]:
    """The cache named by ``$REPRO_CACHE_DIR``, or None when unset."""
    directory = os.environ.get(CACHE_DIR_ENV)
    if not directory:
        return None
    return ResultCache(directory)
