"""Fleet capacity sweep: static vs shedding vs shedding+failover.

Not a figure from the paper — the serving-tier counterpart to
:mod:`repro.bench.exp_chaos`. Each row is one (fleet size, gateway
arm) cell of a board-crash chaos run over the shared tenant catalogue
(:mod:`repro.fleet.scenario`): the same tenants, SLOs and fault plan
served by three gateway configurations that differ only in the
robustness machinery enabled. Columns track admissions, SLO-violation
windows (total and after the crash), shed and failover events, the
crash→last-re-placement lag and the fleet's modeled energy. The
acceptance bar of the robustness PR — shedding+failover re-places all
victims within 3 windows and ends with at most 25% of the static
arm's steady-state violations on the 3-board and 6-board fleets — is
asserted here and in ``benchmarks/bench_harness_scaling.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import Harness
from repro.fleet.scenario import (
    FleetScenarioSpec,
    run_fleet_scenario,
)

__all__ = ["fleet_capacity"]

#: (boards, tenants) cells of the capacity sweep
FLEET_SIZES: Tuple[Tuple[int, int], ...] = ((3, 6), (6, 12))

#: shed-failover steady-state violations must be <= this fraction of
#: the static arm's (the PR's acceptance bar)
FAILOVER_WIN_FRACTION = 0.25

#: all victims must be re-placed within this many windows of the crash
FAILOVER_LAG_WINDOWS = 3


def _lag(value: Optional[int]) -> str:
    return f"{value}" if value is not None else "-"


def fleet_capacity(
    harness: Optional[Harness] = None,
    windows: int = 12,
    at_window: int = 3,
) -> ExperimentResult:
    """Three gateway arms per fleet size under a board crash.

    ``harness`` only pins the seed; the fleet is simulated at the
    model level (no per-batch execution), so repetition policy and
    board choice do not apply.
    """
    seed = harness.seed if harness is not None else 0
    rows = []
    extras = {"comparisons": {}, "summaries": {}}
    for boards, tenants in FLEET_SIZES:
        spec = FleetScenarioSpec(
            boards=boards,
            tenants=tenants,
            windows=windows,
            at_window=at_window,
            seed=seed,
        )
        comparison = run_fleet_scenario(spec)
        extras["comparisons"][(boards, tenants)] = comparison
        for summary in comparison.summaries:
            extras["summaries"][(boards, tenants, summary.arm)] = summary
            rows.append(
                (
                    f"{boards}x{tenants}",
                    summary.arm,
                    f"{summary.tenants_admitted}",
                    f"{summary.tenants_rejected}",
                    f"{summary.total_violations}",
                    f"{summary.steady_violations}",
                    f"{summary.sheds}",
                    f"{summary.failovers}",
                    _lag(summary.failover_lag_windows),
                    f"{summary.energy_uj:.0f}",
                )
            )
        static = comparison.summary("static")
        failover = comparison.summary("shed-failover")
        assert failover.failover_lag_windows is not None, (
            f"{boards}-board fleet: shed-failover performed no failover"
        )
        assert failover.failover_lag_windows <= FAILOVER_LAG_WINDOWS, (
            f"{boards}-board fleet: victims re-placed "
            f"{failover.failover_lag_windows} windows after the crash"
        )
        assert (
            failover.steady_violations
            <= FAILOVER_WIN_FRACTION * static.steady_violations
        ), (
            f"{boards}-board fleet: shed-failover kept "
            f"{failover.steady_violations} steady violations vs "
            f"static's {static.steady_violations}"
        )
    return ExperimentResult(
        experiment_id="fleet",
        title=(
            "fleet serving under a board crash (shared tenant "
            f"catalogue, crash at window {at_window} of {windows}, "
            "arms: admission only / +shedding / +breaker+failover)"
        ),
        headers=(
            "fleet", "arm", "admitted", "rejected",
            "violations", "steady", "sheds", "failovers",
            "lag (w)", "energy (µJ)",
        ),
        rows=rows,
        note=(
            "static strands the dead board's tenants (every window "
            "after the crash violates); shed requeues them with "
            "seeded-jitter backoff and re-admits where capacity "
            "exists; shed-failover re-places them the moment the "
            "board's circuit breaker opens. The acceptance bar — "
            f"re-placement within {FAILOVER_LAG_WINDOWS} windows and "
            f"≤ {FAILOVER_WIN_FRACTION:.0%} of static's steady-state "
            "violations — is asserted for every fleet size"
        ),
        extras=extras,
    )
