"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench            # list experiments
    python -m repro.bench fig7       # run one
    python -m repro.bench all        # run everything
    python -m repro.bench fig7 --repetitions 20
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="regenerate the CStream paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig3, fig5, fig7-17, tab2/4/5, abl_*), "
        "'all', or 'report'",
    )
    parser.add_argument(
        "--output",
        default="results.md",
        help="report output path (only with 'report')",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="measurement repetitions per cell (default: paper's 100)",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for experiment_id, function in EXPERIMENTS.items():
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"  {experiment_id:6s} {summary}")
        return 0

    if args.experiment == "report":
        from repro.bench.report import generate_report

        generate_report(args.output)
        print(f"report written to {args.output}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.time()
        options = {}
        signature = inspect.signature(EXPERIMENTS[experiment_id])
        if args.repetitions is not None and "repetitions" in signature.parameters:
            options["repetitions"] = args.repetitions
        result = run_experiment(experiment_id, **options)
        print(result.render())
        print(f"[{experiment_id} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
