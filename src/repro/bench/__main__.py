"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench            # list experiments
    python -m repro.bench fig7       # run one
    python -m repro.bench all        # run everything
    python -m repro.bench fig7 --repetitions 20
    python -m repro.bench all --jobs 4 --cache-dir ~/.cache/cstream

``--jobs N`` (or ``REPRO_PARALLEL=N``) computes grid cells on N worker
processes; ``--cache-dir`` (or ``REPRO_CACHE_DIR``) persists results so
re-running an experiment is a cache read. Also reachable as
``cstream bench ...``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.harness import Harness


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="regenerate the CStream paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig3, fig5, fig7-17, tab2/4/5, abl_*), "
        "'all', or 'report'",
    )
    parser.add_argument(
        "--output",
        default="results.md",
        help="report output path (only with 'report')",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="measurement repetitions per cell (default: paper's 100)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_PARALLEL, "
        "else serial)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="grid cells per worker task (default: auto, about four "
        "task waves per worker)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (default: REPRO_CACHE_DIR, "
        "else no persistent cache)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="write a Chrome trace JSON per computed cell into this "
        "directory (default: REPRO_TRACE_DIR, else no tracing)",
    )
    return parser


def _build_harness(args) -> "Harness | None":
    """One harness shared by every experiment of this invocation, so
    overlapping grids (fig7/fig8) and profiles are computed once.

    Returns None when none of ``--jobs``/``--cache-dir``/``--trace-dir``
    was given: experiments then use the process-wide
    :func:`default_harness` (which still honours ``REPRO_PARALLEL`` /
    ``REPRO_CACHE_DIR`` / ``REPRO_TRACE_DIR``).
    """
    if (
        args.jobs is None
        and args.chunk is None
        and args.cache_dir is None
        and args.trace_dir is None
    ):
        return None
    kwargs = {}
    if args.jobs is not None:
        kwargs["jobs"] = args.jobs
    if args.chunk is not None:
        kwargs["chunk"] = args.chunk
    if args.cache_dir is not None:
        from repro.bench.cache import ResultCache

        kwargs["cache"] = ResultCache(args.cache_dir)
    if args.trace_dir is not None:
        kwargs["trace_dir"] = args.trace_dir
    return Harness(**kwargs)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for experiment_id, function in EXPERIMENTS.items():
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"  {experiment_id:6s} {summary}")
        return 0

    harness = _build_harness(args)

    if args.experiment == "report":
        from repro.bench.report import generate_report

        if harness is None:
            generate_report(args.output)
        else:
            generate_report(args.output, harness=harness)
        print(f"report written to {args.output}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; known: "
            f"{', '.join(EXPERIMENTS)} (or 'all', 'report')",
            file=sys.stderr,
        )
        return 2
    for experiment_id in ids:
        start = time.time()
        options = {}
        signature = inspect.signature(EXPERIMENTS[experiment_id])
        if args.repetitions is not None and "repetitions" in signature.parameters:
            options["repetitions"] = args.repetitions
        if harness is not None and "harness" in signature.parameters:
            options["harness"] = harness
        result = run_experiment(experiment_id, **options)
        print(result.render())
        print(f"[{experiment_id} took {time.time() - start:.1f}s]\n")
        if harness is not None and harness.cache is not None:
            stats = harness.cache.stats
            print(
                f"[cache: {stats.hits} hits / {stats.lookups} lookups, "
                f"{stats.stores} stored]\n"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
