"""End-to-end experiments: Fig 5, Fig 7, Fig 8, Fig 9.

Fig 7 and Fig 8 read the same (3 algorithms × 4 datasets × 6 mechanisms)
grid out as energy and CLCV respectively; the harness cache makes the
second one free. Fig 5 compares shared vs private state for replicated
tdic32 workers; Fig 9 runs the dynamic-workload adaptation loop with and
without the PID feedback regulation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bench.experiments import ExperimentResult, prefetch_grid
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.compression import get_codec
from repro.core.adaptive import FeedbackRegulator
from repro.core.baselines import MECHANISM_NAMES, MechanismOutcome
from repro.core.plan import SchedulingPlan
from repro.core.profiler import profile_workload
from repro.datasets import MicroDataset
from repro.runtime.executor import (
    ExecutionConfig,
    MechanismDynamics,
    PipelineExecutor,
)

__all__ = [
    "fig05_state_sharing",
    "fig07_energy",
    "fig08_clcv",
    "fig09_adaptivity",
    "end_to_end_specs",
]


def end_to_end_specs() -> List[WorkloadSpec]:
    """The 12 Algorithm-Dataset procedures of the end-to-end grid."""
    return [
        WorkloadSpec.of(codec, dataset)
        for codec in ("tcomp32", "lz4", "tdic32")
        for dataset in ("sensor", "rovio", "stock", "micro")
    ]


def fig07_energy(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """Fig 7: measured energy (µJ/byte) of all mechanisms on all
    workloads."""
    harness = harness or default_harness()
    specs = end_to_end_specs()
    prefetch_grid(harness, specs, MECHANISM_NAMES, repetitions)
    rows = []
    savings = {}
    for spec in specs:
        row = [spec.label]
        energies = {}
        for mechanism in MECHANISM_NAMES:
            result = harness.run(spec, mechanism, repetitions=repetitions)
            energies[mechanism] = result.mean_energy_uj_per_byte
            row.append(f"{energies[mechanism]:.3f}")
        worst = max(energies.values())
        savings[spec.label] = 1.0 - energies["CStream"] / worst
        rows.append(tuple(row))
    best = max(savings, key=savings.get)
    return ExperimentResult(
        experiment_id="fig7",
        title="energy consumption E_mes (µJ/byte)",
        headers=("workload",) + MECHANISM_NAMES,
        rows=rows,
        note=f"CStream's largest saving vs the worst mechanism: "
        f"{savings[best]:.0%} on {best} (paper: up to 53% on lz4-Stock)",
        extras={"savings": savings},
    )


def fig08_clcv(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """Fig 8: compressing-latency-constraint violations on the same grid."""
    harness = harness or default_harness()
    prefetch_grid(harness, end_to_end_specs(), MECHANISM_NAMES, repetitions)
    rows = []
    clcv = {}
    for spec in end_to_end_specs():
        row = [spec.label]
        for mechanism in MECHANISM_NAMES:
            result = harness.run(spec, mechanism, repetitions=repetitions)
            clcv[(spec.label, mechanism)] = result.clcv
            row.append(f"{result.clcv:.2f}")
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="fig8",
        title="compressing latency constraint violation (CLCV)",
        headers=("workload",) + MECHANISM_NAMES,
        rows=rows,
        note="CStream's CLCV is zero on every workload",
        extras={"clcv": clcv},
    )


def fig05_state_sharing(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    workers: int = 6,
) -> ExperimentResult:
    """Fig 5: shared vs private dictionaries for replicated tdic32
    state-update workers on Rovio — plus the *partitioned* mode the
    paper leaves as future work (key-sharded dictionaries: lock-free
    like private state, hit-rate-preserving like the shared one, at the
    cost of a routing stream).

    The compression-ratio deltas are computed on real data: one shared
    dictionary over the whole stream, per-worker dictionaries over
    contiguous chunks, and value-routed shards.
    """
    harness = harness or default_harness()
    spec = WorkloadSpec.of("tdic32", "rovio")
    profile = harness.profile(spec)
    context = harness.context(spec)
    graph = context.fine_graph

    # Real compression-ratio comparison: one shared dictionary over the
    # whole stream vs per-worker dictionaries over contiguous chunks
    # (each private dictionary re-learns the hot set from scratch).
    dataset = spec.make_dataset()
    data = dataset.generate(spec.batch_size * 4, seed=harness.seed)
    shared_codec = get_codec("tdic32", shared_state=True)
    shared_ratio = shared_codec.compress(data).compression_ratio
    words = np.frombuffer(data, dtype=np.uint32)
    chunk = (len(words) // workers // 4) * 4  # whole tuples per worker
    private_output = 0
    consumed = 0
    for worker in range(workers):
        codec = get_codec("tdic32")
        end = len(words) if worker == workers - 1 else consumed + chunk
        private_output += codec.compress(
            words[consumed:end].tobytes()
        ).output_size
        consumed = end
    private_ratio = len(data) / private_output

    from repro.compression.partitioned import PartitionedCodec

    partitioned = PartitionedCodec(shards=workers)
    partitioned_ratio = len(data) / len(partitioned.compress(data))

    # Replicate the state-update stage `workers`-fold and measure both
    # contention modes under the same plan.
    state_stage = next(
        index
        for index, task in enumerate(graph.tasks)
        if "s2" in task.step_ids
    )
    little = list(harness.board.little_core_ids)
    big = list(harness.board.big_core_ids)
    pool = little + big
    assignments = []
    for index, task in enumerate(graph.tasks):
        if index == state_stage:
            assignments.append(
                tuple(pool[i % len(pool)] for i in range(workers))
            )
        else:
            assignments.append((pool[index % len(pool)],))
    plan = SchedulingPlan(graph=graph, assignments=tuple(assignments))

    rows = []
    measured = {}
    modes = (
        ("share", True, shared_ratio),
        ("not share", False, private_ratio),
        ("partitioned", False, partitioned_ratio),
    )
    for label, shared, ratio in modes:
        outcome = MechanismOutcome(
            mechanism=label, graph=graph, plan=plan,
            dynamics=MechanismDynamics(),
        )
        result = harness.run_outcome(
            spec,
            outcome,
            repetitions=repetitions,
            shared_state=shared,
            shared_state_stages=frozenset({state_stage}),
        )
        measured[label] = result
        rows.append(
            (
                label,
                f"{result.mean_energy_uj_per_byte:.3f}",
                f"{result.mean_latency_us_per_byte:.2f}",
                f"{ratio:.2f}",
            )
        )
    energy_saving = 1.0 - (
        measured["not share"].mean_energy_uj_per_byte
        / measured["share"].mean_energy_uj_per_byte
    )
    latency_saving = 1.0 - (
        measured["not share"].mean_latency_us_per_byte
        / measured["share"].mean_latency_us_per_byte
    )
    return ExperimentResult(
        experiment_id="fig5",
        title=f"state sharing vs private state ({workers} tdic32 workers, Rovio)",
        headers=("mode", "E (µJ/B)", "L (µs/B)", "compression ratio"),
        rows=rows,
        note=f"private state saves {energy_saving:.0%} energy and "
        f"{latency_saving:.0%} latency for {shared_ratio - private_ratio:.2f} "
        "compression-ratio loss (paper: 51% / 82% / 0.03); the partitioned "
        "row is this reproduction's future-work extension",
        extras={
            "energy_saving": energy_saving,
            "latency_saving": latency_saving,
            "ratio_loss": shared_ratio - private_ratio,
            "partitioned_ratio": partitioned_ratio,
            "shared_ratio": shared_ratio,
            "private_ratio": private_ratio,
        },
    )


def fig09_adaptivity(
    harness: Optional[Harness] = None,
    latency_constraint: float = 20.0,
    batches: int = 15,
    change_at: int = 5,
    low_range: int = 500,
    high_range: int = 50_000,
) -> ExperimentResult:
    """Fig 9: adaptation of tcomp32-Micro to a dynamic-range jump at the
    fifth batch, with and without PID feedback regulation."""
    harness = harness or default_harness()
    batch_size = WorkloadSpec.of("tcomp32", "micro").batch_size
    spec = WorkloadSpec.of(
        "tcomp32",
        "micro",
        dataset_options={"dynamic_range": low_range},
        latency_constraint=latency_constraint,
    )
    context = harness.context(spec)

    # Build the dynamic stream: per-batch step costs before/after the jump.
    codec = get_codec("tcomp32")
    low_profile = harness.profile(spec)
    high_profile = profile_workload(
        codec,
        MicroDataset(dynamic_range=high_range),
        batch_size,
        batches=max(batches - change_at, 1),
        seed=harness.seed + 1,
    )
    stream = list(low_profile.per_batch_step_costs)[:change_at]
    stream += list(high_profile.per_batch_step_costs)
    while len(stream) < batches:
        stream += list(high_profile.per_batch_step_costs)
    stream = stream[:batches]

    config = ExecutionConfig(
        latency_constraint_us_per_byte=latency_constraint,
        repetitions=1,
        batches_per_repetition=3,
        warmup_batches=2,
        seed=harness.seed,
    )
    executor = PipelineExecutor(harness.board, config)

    rows = []
    extras = {"with": [], "without": []}
    for regulated in (False, True):
        model = context.cost_model(context.fine_graph)
        regulator = FeedbackRegulator(model)
        plan = regulator.plan
        rng = np.random.default_rng(harness.seed)
        for batch_index, costs in enumerate(stream):
            # Each logical batch is measured at steady state: the window
            # repeats its characteristics (the paper's 50 ms measurement
            # period spans several batches).
            metrics = executor.run_single(
                plan, [costs] * 3, batch_size, rng
            )
            measurement = metrics[-1]
            if regulated:
                regulator.observe(batch_index, measurement.latency_us_per_byte)
                plan = regulator.plan
            key = "with" if regulated else "without"
            extras[key].append(
                {
                    "batch": batch_index,
                    "latency": measurement.latency_us_per_byte,
                    "energy": measurement.energy_uj_per_byte,
                    "violated": measurement.violated,
                }
            )
    for batch_index in range(batches):
        without = extras["without"][batch_index]
        with_reg = extras["with"][batch_index]
        rows.append(
            (
                batch_index,
                f"{without['energy']:.3f}",
                "yes" if without["violated"] else "no",
                f"{with_reg['energy']:.3f}",
                "yes" if with_reg["violated"] else "no",
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title=(
            f"adaptation to dynamic workload (range {low_range} -> "
            f"{high_range} at batch {change_at}, L_set={latency_constraint})"
        ),
        headers=(
            "batch", "E w/o regulation", "violated w/o",
            "E with regulation", "violated with",
        ),
        rows=rows,
        note="without regulation the old plan violates after the change; "
        "with PID regulation CStream recalibrates and replans within a "
        "few batches at a higher steady energy",
        extras=extras,
    )
