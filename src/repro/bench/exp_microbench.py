"""Micro-benchmark experiments: Fig 3, Table II, Table IV, Table V.

These characterize the substrate and the cost model rather than the
end-to-end system: the roofline curves of the two core types, the
interconnect paths, the per-task cost anchors, and the model's accuracy
against measurement.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.core.profiler import profile_roofline
from repro.core.scheduler import Scheduler
from repro.simcore.hardware import CoreType
from repro.simcore.interconnect import Path, stream_probe

__all__ = [
    "fig03_roofline",
    "tab02_interconnect",
    "tab04_task_comparison",
    "tab05_model_accuracy",
]


def fig03_roofline(
    harness: Optional[Harness] = None,
    kappa_step: int = 20,
) -> ExperimentResult:
    """Fig 3: four-segment rooflines of the rk3399 big and little cores,
    with the κ markers of tcomp32's steps."""
    harness = harness or default_harness()
    board = harness.board
    big = board.cores_of_type(CoreType.BIG)[0]
    little = board.cores_of_type(CoreType.LITTLE)[0]
    kappas = list(range(5, 500, kappa_step))
    big_samples = profile_roofline(big, kappas)
    little_samples = profile_roofline(little, kappas)
    rows = []
    for index, kappa in enumerate(kappas):
        rows.append(
            (
                kappa,
                f"{big_samples.eta_values[index]:.2f}",
                f"{little_samples.eta_values[index]:.2f}",
                f"{big_samples.zeta_values[index]:.0f}",
                f"{little_samples.zeta_values[index]:.0f}",
            )
        )
    spec = WorkloadSpec.of("tcomp32", "rovio")
    profile = harness.profile(spec)
    markers = {
        step: round(profile.step_kappa(step), 1) for step in profile.step_ids
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="roofline of rk3399 big/little cores (η: instr/µs, ζ: instr/µJ)",
        headers=("kappa", "eta_big", "eta_little", "zeta_big", "zeta_little"),
        rows=rows,
        note=f"tcomp32-rovio step kappa markers: {markers}; the little "
        "core's eta dips in the kappa 30-70 segment (in-order L1-I stalls)",
        extras={"step_kappas": markers},
    )


def tab02_interconnect(harness: Optional[Harness] = None) -> ExperimentResult:
    """Table II: bandwidth and latency of cross-core communication."""
    harness = harness or default_harness()
    spec = harness.board.interconnect
    rows = []
    for path, label in (
        (Path.C0, "intra-cluster c0"),
        (Path.C1, "inter-cluster c1 (big->little)"),
        (Path.C2, "inter-cluster c2 (little->big)"),
    ):
        probe = stream_probe(spec, path)
        rows.append(
            (
                label,
                f"{probe['bandwidth_gbps']:.1f} GB/s",
                f"{probe['latency_ns']:.1f} ns",
            )
        )
    return ExperimentResult(
        experiment_id="tab2",
        title="cross-core communication paths (STREAM-style probe)",
        headers=("Path", "Bandwidth", "Latency"),
        rows=rows,
        note="c2 (little->big) pays extra synchronization/hand-shake cycles",
    )


def tab04_task_comparison(
    harness: Optional[Harness] = None,
) -> ExperimentResult:
    """Table IV: decomposed t0/t1 vs whole-procedure t_all vs t_re×2 on
    big and little cores (tcomp32-Rovio)."""
    harness = harness or default_harness()
    spec = WorkloadSpec.of("tcomp32", "rovio")
    context = harness.context(spec)
    fine_model = context.cost_model(context.fine_graph)
    coarse_model = context.cost_model(context.coarse_graph)
    big = harness.board.big_core_ids[0]
    little = harness.board.little_core_ids[0]

    rows = []
    for stage, name in enumerate(task.name for task in context.fine_graph.tasks):
        rows.append(
            (
                name,
                f"{fine_model.stage_kappa(stage):.0f}",
                f"{fine_model.compute_latency(stage, big):.1f}",
                f"{fine_model.compute_latency(stage, little):.1f}",
                f"{fine_model.task_energy(stage, big):.2f}",
                f"{fine_model.task_energy(stage, little):.2f}",
            )
        )
    for replicas, name in ((1, "t_all"), (2, "t_re x2")):
        # t_re×2: per-replica latency (half the data), total energy.
        energy_big = coarse_model.task_energy(0, big, replicas) * replicas
        energy_little = coarse_model.task_energy(0, little, replicas) * replicas
        rows.append(
            (
                name,
                f"{coarse_model.stage_kappa(0):.0f}",
                f"{coarse_model.compute_latency(0, big, replicas):.1f}",
                f"{coarse_model.compute_latency(0, little, replicas):.1f}",
                f"{energy_big:.2f}",
                f"{energy_little:.2f}",
            )
        )
    return ExperimentResult(
        experiment_id="tab4",
        title="task comparison, tcomp32-Rovio (l: µs/B, e: µJ/B)",
        headers=("Task", "kappa", "l big", "l little", "e big", "e little"),
        rows=rows,
        note="paper anchors: t0 κ≈320 (15.0/32.6, 0.29/0.27), "
        "t1 κ≈102 (13.5/21.7, 0.32/0.10), t_all κ≈220 (28.3/53.2, 0.59/0.34)",
    )


def tab05_model_accuracy(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """Table V: cost-model estimates vs measurements under the optimal
    plans of all three codecs compressing Rovio."""
    harness = harness or default_harness()
    rows = []
    extras = {}
    for codec in ("lz4", "tcomp32", "tdic32"):
        spec = WorkloadSpec.of(codec, "rovio")
        context = harness.context(spec)
        model = context.cost_model(context.fine_graph)
        schedule = Scheduler(model).schedule(best_effort=True)
        estimate = schedule.estimate
        result = harness.run(spec, "CStream", repetitions=repetitions)
        l_est = estimate.latency_us_per_byte
        l_pro = result.mean_latency_us_per_byte
        e_est = estimate.energy_uj_per_byte
        e_pro = result.mean_energy_uj_per_byte
        rows.append(
            (
                codec,
                f"{l_est:.2f}",
                f"{l_pro:.2f}",
                f"{abs(l_pro - l_est) / l_pro:.3f}",
                f"{e_est:.3f}",
                f"{e_pro:.3f}",
                f"{abs(e_pro - e_est) / e_pro:.3f}",
            )
        )
        extras[codec] = {
            "relative_error_latency": abs(l_pro - l_est) / l_pro,
            "relative_error_energy": abs(e_pro - e_est) / e_pro,
            "plan": schedule.plan.describe(),
        }
    return ExperimentResult(
        experiment_id="tab5",
        title="cost-model correctness under optimal plans (Rovio)",
        headers=(
            "algorithm", "L_est", "L_pro", "rel_err_L",
            "E_est", "E_pro", "rel_err_E",
        ),
        rows=rows,
        note="the energy gap covers what Eq 4 does not model: static/idle "
        "power, message overheads and scheduling work (paper: 0.07-0.14)",
        extras=extras,
    )
