"""System-configuration experiments: Fig 15, Fig 16, Fig 17 (§VII-C/D).

Frequency is regulated statically (fixed maps) and dynamically (cpufreq
governors), and the break-down analysis isolates CStream's two design
contributions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bench.experiments import ExperimentResult, prefetch_grid
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.core.baselines import MECHANISM_NAMES, get_mechanism

__all__ = ["fig15_static_frequency", "fig16_dvfs", "fig17_breakdown"]

#: (label, big MHz, little MHz) grid for the static sweep
_FREQUENCY_GRID: Tuple = (
    ("B1800/L1416", 1800.0, 1416.0),
    ("B1416/L1416", 1416.0, 1416.0),
    ("B1008/L1008", 1008.0, 1008.0),
    ("B600/L600", 600.0, 600.0),
    ("B1800/L600", 1800.0, 600.0),
    ("B600/L1416", 600.0, 1416.0),
)


def _frequency_map(harness: Harness, big_mhz: float, little_mhz: float) -> Dict:
    freq = {}
    for core_id in harness.board.big_core_ids:
        freq[core_id] = big_mhz
    for core_id in harness.board.little_core_ids:
        freq[core_id] = little_mhz
    return freq


def fig15_static_frequency(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    grid: Sequence = _FREQUENCY_GRID,
) -> ExperimentResult:
    """Fig 15: energy of tcomp32-Rovio under statically fixed core
    frequencies. Both the planner and the executor see the fixed map."""
    harness = harness or default_harness()
    rows = []
    values = {}
    for label, big_mhz, little_mhz in grid:
        frequency_map = _frequency_map(harness, big_mhz, little_mhz)
        spec = WorkloadSpec.of("tcomp32", "rovio")
        context = harness.context(spec, frequency_map=frequency_map)
        row = [label]
        for mechanism in MECHANISM_NAMES:
            outcome = get_mechanism(mechanism).prepare(context)
            result = harness.run_outcome(
                spec,
                outcome,
                repetitions=repetitions,
                frequency_map=frequency_map,
            )
            values[(label, mechanism)] = result.mean_energy_uj_per_byte
            row.append(f"{result.mean_energy_uj_per_byte:.3f}")
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="fig15",
        title="impact of static core frequencies, tcomp32-Rovio (E µJ/B)",
        headers=("frequencies",) + MECHANISM_NAMES,
        rows=rows,
        note="the lowest frequency is not the lowest energy: stretched "
        "runtimes pay the non-scaling share of busy power",
        extras={"values": values},
    )


def fig16_dvfs(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    governors: Sequence[str] = ("default", "conservative", "ondemand"),
) -> ExperimentResult:
    """Fig 16: each mechanism under the three DVFS strategies
    (cells: E µJ/B / CLCV)."""
    harness = harness or default_harness()
    spec = WorkloadSpec.of("tcomp32", "rovio")
    for governor in governors:
        prefetch_grid(
            harness, [spec], MECHANISM_NAMES, repetitions,
            governor=governor, batches_per_repetition=14, warmup_batches=6,
        )
    rows = []
    values = {}
    for governor in governors:
        row = [governor]
        for mechanism in MECHANISM_NAMES:
            result = harness.run(
                spec,
                mechanism,
                repetitions=repetitions,
                governor=governor,
                batches_per_repetition=14,
                warmup_batches=6,
            )
            values[(governor, mechanism, "E")] = result.mean_energy_uj_per_byte
            values[(governor, mechanism, "CLCV")] = result.clcv
            row.append(
                f"{result.mean_energy_uj_per_byte:.3f}/{result.clcv:.2f}"
            )
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="fig16",
        title="impact of DVFS strategies, tcomp32-Rovio (E µJ/B / CLCV)",
        headers=("governor",) + MECHANISM_NAMES,
        rows=rows,
        note="conservative trades violations for energy; ondemand switches "
        "too often and loses on both metrics",
        extras={"values": values},
    )


def fig17_breakdown(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
    latency_constraint: float = 24.0,
) -> ExperimentResult:
    """Fig 17: factor analysis of CStream's contributions on
    tcomp32-Rovio.

    We run the break-down at a slightly tighter constraint than the
    end-to-end default so the communication-blind ablation's
    underestimate actually binds (see DESIGN.md); the paper's
    qualitative ordering is unchanged.
    """
    harness = harness or default_harness()
    spec = WorkloadSpec.of(
        "tcomp32", "rovio", latency_constraint=latency_constraint
    )
    factors = ("simple", "+decom.", "+asy-comp.", "+asy-comm.")
    prefetch_grid(harness, [spec], factors, repetitions)
    rows = []
    values = {}
    for mechanism in factors:
        result = harness.run(spec, mechanism, repetitions=repetitions)
        values[mechanism] = {
            "E": result.mean_energy_uj_per_byte,
            "CLCV": result.clcv,
        }
        rows.append(
            (
                mechanism,
                f"{result.mean_energy_uj_per_byte:.3f}",
                f"{result.clcv:.2f}",
            )
        )
    return ExperimentResult(
        experiment_id="fig17",
        title=(
            "break-down analysis, tcomp32-Rovio "
            f"(L_set={latency_constraint} µs/B)"
        ),
        headers=("factor", "E (µJ/B)", "CLCV"),
        rows=rows,
        note="decomposition cuts energy; computation-awareness cuts more "
        "but violates the constraint; communication-awareness restores "
        "CLCV=0 at comparable energy",
        extras={"values": values},
    )
