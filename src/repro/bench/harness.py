"""Experiment harness regenerating the paper's tables and figures.

The harness owns a process-wide cache of profiled workloads, workload
contexts and measurement runs, so the figure benches (which share many
cells — Fig 7 and Fig 8 are the same runs read out two ways) never
repeat a simulation. Two optional layers extend that:

* a **persistent result cache** (:mod:`repro.bench.cache`): point
  ``REPRO_CACHE_DIR`` at a directory (or pass ``cache=``) and profiles
  and run results survive the process, keyed by a content digest of
  everything that affects them — board, spec, mechanism, repetitions,
  seed, executor overrides, code-version salt;
* a **parallel grid executor** (:mod:`repro.bench.parallel`):
  ``grid(..., jobs=N)`` (or ``REPRO_PARALLEL=N``) fans independent
  cells out over worker processes; each cell is one self-contained DES
  run, so results are byte-identical to the serial order.

Conventions:

* the default batch size is 64 KiB rather than the paper's 932 800 bytes
  — all metrics are batch-normalized (µs/byte, µJ/byte) so the operating
  point is unchanged, while pure-Python codecs stay fast; set
  ``REPRO_BATCH_BYTES`` to the paper's value for full parity;
* repetitions default to the paper's 100 (``REPRO_REPETITIONS``
  overrides; the test suite uses fewer).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bench.cache import ResultCache, default_cache, stable_digest
from repro.compression import get_codec
from repro.core.baselines import (
    MechanismOutcome,
    WorkloadContext,
    get_mechanism,
)
from repro.core.profiler import WorkloadProfile, profile_workload
from repro.datasets import get_dataset
from repro.obs.registry import REGISTRY
from repro.obs.trace import TraceRecorder
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.runtime.metrics import RunResult
from repro.simcore.boards import BoardSpec, rk3399

__all__ = ["WorkloadSpec", "Harness", "default_harness", "format_table"]

#: environment variable: write a Chrome trace per computed cell here
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: paper defaults
PAPER_LATENCY_CONSTRAINT = 26.0
PAPER_BATCH_BYTES = 932_800

#: process-wide dry-run memo, (spec, batches, seed) -> WorkloadProfile
_PROFILE_MEMO: Dict[Tuple, WorkloadProfile] = {}

DEFAULT_BATCH_BYTES = int(os.environ.get("REPRO_BATCH_BYTES", 65536))
DEFAULT_REPETITIONS = int(os.environ.get("REPRO_REPETITIONS", 100))

#: sentinel distinguishing "use the env-configured default cache" from
#: an explicit ``cache=None`` (no persistent cache)
_DEFAULT_CACHE = object()


def _freeze(value):
    """Recursively convert mappings/lists into hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(
            (key, _freeze(value[key])) for key in sorted(value, key=repr)
        )
    if isinstance(value, (list, set, frozenset)):
        return tuple(_freeze(item) for item in sorted(value, key=repr))
    if isinstance(value, tuple):
        return tuple(_freeze(item) for item in value)
    return value


def _frozen(mapping: Optional[Mapping]) -> Tuple:
    if not mapping:
        return ()
    return tuple((key, _freeze(mapping[key])) for key in sorted(mapping))


#: ExecutionConfig override keys that carry fault-injection payloads
_FAULT_OVERRIDE_KEYS = ("fault", "fault_plan")


def _normalize_fault_override(value):
    """Cache-key form of a fault override: the plan's content digest.

    A faulted cell must never hit a fault-free cache entry (nor one
    injected with a different plan), so keys carry a stable fingerprint
    of the fault payload rather than the object identity. ``None``
    passes through so fault-free keys stay byte-identical to pre-fault
    harness versions and warm caches remain valid."""
    if value is None:
        return None
    fingerprint = getattr(value, "fingerprint", None)
    if callable(fingerprint):
        return ("fault-plan", fingerprint())
    return ("fault-plan", stable_digest(repr(value), salt="fault-plan")[:16])


@dataclass(frozen=True)
class WorkloadSpec:
    """One Algorithm-Dataset procedure (paper Definition 1)."""

    codec: str
    dataset: str
    codec_options: Tuple = ()
    dataset_options: Tuple = ()
    batch_size: int = DEFAULT_BATCH_BYTES
    latency_constraint: float = PAPER_LATENCY_CONSTRAINT

    @classmethod
    def of(
        cls,
        codec: str,
        dataset: str,
        codec_options: Optional[Mapping] = None,
        dataset_options: Optional[Mapping] = None,
        **overrides,
    ) -> "WorkloadSpec":
        return cls(
            codec=codec,
            dataset=dataset,
            codec_options=_frozen(codec_options),
            dataset_options=_frozen(dataset_options),
            **overrides,
        )

    @property
    def label(self) -> str:
        return f"{self.codec}-{self.dataset}"

    def make_codec(self):
        return get_codec(self.codec, **dict(self.codec_options))

    def make_dataset(self):
        return get_dataset(self.dataset, **dict(self.dataset_options))


class Harness:
    """Caching experiment runner.

    ``cache`` attaches a persistent :class:`~repro.bench.cache.ResultCache`
    (default: the one named by ``REPRO_CACHE_DIR``, if set; pass ``None``
    to disable). ``jobs`` is the default process-parallelism of
    :meth:`grid` (default: ``REPRO_PARALLEL``, else serial).
    ``trace_dir`` (default: ``REPRO_TRACE_DIR``, else off) makes every
    *computed* cell run traced and drop a Chrome trace JSON into that
    directory — cached cells are served as usual, and the traced numbers
    are byte-identical to untraced ones so the cache stays valid.
    """

    def __init__(
        self,
        board: Optional[BoardSpec] = None,
        repetitions: int = DEFAULT_REPETITIONS,
        batches_per_repetition: int = 6,
        profile_batches: int = 4,
        seed: int = 0,
        cache=_DEFAULT_CACHE,
        jobs: Optional[int] = None,
        chunk: Optional[int] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.board = board if board is not None else rk3399()
        self.repetitions = repetitions
        self.batches_per_repetition = batches_per_repetition
        self.profile_batches = profile_batches
        self.seed = seed
        self.cache: Optional[ResultCache] = (
            default_cache() if cache is _DEFAULT_CACHE else cache
        )
        if jobs is None:
            jobs = int(os.environ.get("REPRO_PARALLEL", "1"))
        self.jobs = max(1, jobs)
        #: default cells-per-worker-task of :meth:`grid` (None = auto)
        self.chunk = chunk
        if trace_dir is None:
            trace_dir = os.environ.get(TRACE_DIR_ENV) or None
        self.trace_dir = trace_dir
        self._profiles: Dict = {}
        self._contexts: Dict = {}
        self._runs: Dict = {}

    # -- cache keys ---------------------------------------------------------

    def board_fingerprint(self) -> str:
        """Stable digest of the board spec (``repr`` covers every field
        that shapes the simulation). Recomputed per call so a mutated
        ``harness.board`` can never serve another board's cells."""
        return stable_digest(repr(self.board), salt="board")[:16]

    def profile_key(self, spec: WorkloadSpec) -> Tuple:
        """Everything :func:`profile_workload` depends on."""
        return (
            "profile",
            spec.codec, spec.codec_options,
            spec.dataset, spec.dataset_options,
            spec.batch_size,
            max(self.profile_batches, self.batches_per_repetition),
            self.seed,
        )

    def context_key(
        self, spec: WorkloadSpec, frequency_map: Optional[Mapping] = None
    ) -> Tuple:
        return (
            "context",
            self.board_fingerprint(),
            self.profile_key(spec),
            spec.latency_constraint,
            _frozen(frequency_map),
        )

    def run_key(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int] = None,
        config_overrides: Optional[Mapping] = None,
    ) -> Tuple:
        """Everything a measured cell depends on: board, workload spec,
        mechanism, repetition/batch counts, seed and executor overrides.
        Used both for the in-memory map and (digested, salted with the
        cache version) for the persistent store. Fault overrides are
        replaced by their plan fingerprint (see
        :func:`_normalize_fault_override`)."""
        if config_overrides and any(
            key in config_overrides for key in _FAULT_OVERRIDE_KEYS
        ):
            config_overrides = {
                key: (
                    _normalize_fault_override(value)
                    if key in _FAULT_OVERRIDE_KEYS
                    else value
                )
                for key, value in config_overrides.items()
            }
        return (
            "run",
            self.board_fingerprint(),
            spec,
            mechanism,
            repetitions or self.repetitions,
            self.batches_per_repetition,
            max(self.profile_batches, self.batches_per_repetition),
            self.seed,
            _frozen(config_overrides),
        )

    def clear_caches(self) -> None:
        """Drop the in-memory caches (workers call this between grids to
        bound memory; the persistent cache is unaffected)."""
        self._profiles.clear()
        self._contexts.clear()
        self._runs.clear()

    # -- cached building blocks ---------------------------------------------

    def profile(self, spec: WorkloadSpec) -> WorkloadProfile:
        key = self.profile_key(spec)
        if key not in self._profiles:
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is None:
                batches = max(
                    self.profile_batches, self.batches_per_repetition
                )
                # Process-wide memo: a dry run is a pure function of
                # (spec, batches, seed) — WorkloadSpec names codec and
                # dataset by registry name plus options — and the
                # returned profile is frozen, so harnesses in one
                # process (grid workers, benchmarks) share the
                # measurement instead of re-compressing sample batches.
                memo_key = (spec, batches, self.seed)
                cached = _PROFILE_MEMO.get(memo_key)
                if cached is None:
                    with REGISTRY.timer("harness.profile"):
                        cached = profile_workload(
                            spec.make_codec(),
                            spec.make_dataset(),
                            spec.batch_size,
                            batches=batches,
                            seed=self.seed,
                        )
                    if len(_PROFILE_MEMO) >= 64:
                        _PROFILE_MEMO.clear()
                    _PROFILE_MEMO[memo_key] = cached
                if self.cache is not None:
                    self.cache.put(key, cached)
            self._profiles[key] = cached
        return self._profiles[key]

    def context(
        self, spec: WorkloadSpec, frequency_map: Optional[Mapping] = None
    ) -> WorkloadContext:
        key = self.context_key(spec, frequency_map)
        if key not in self._contexts:
            self._contexts[key] = WorkloadContext.build(
                self.board,
                self.profile(spec),
                spec.latency_constraint,
                seed=self.seed,
                frequency_map=dict(frequency_map) if frequency_map else None,
            )
        return self._contexts[key]

    # -- measurement -----------------------------------------------------------

    def cached_run(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int] = None,
        config_overrides: Optional[Mapping] = None,
    ) -> Optional[RunResult]:
        """The cached result of a cell, or None without computing it.

        Checks the in-memory map first, then the persistent cache
        (promoting a persistent hit into memory).
        """
        key = self.run_key(spec, mechanism, repetitions, config_overrides)
        if key in self._runs:
            return self._runs[key]
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self._runs[key] = cached
                return cached
        return None

    def store_run(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int],
        config_overrides: Optional[Mapping],
        result: RunResult,
        force: bool = False,
    ) -> None:
        """Merge an externally computed cell (e.g. from a worker process)
        into the in-memory and persistent caches. ``force`` overwrites an
        existing persistent entry (used to upgrade a cached result with a
        trace summary — the numbers are identical either way)."""
        key = self.run_key(spec, mechanism, repetitions, config_overrides)
        self._runs[key] = result
        if self.cache is not None and (force or key not in self.cache):
            self.cache.put(key, result)

    def run(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int] = None,
        **config_overrides,
    ) -> RunResult:
        """Measure one (workload, mechanism) cell; results are cached."""
        cached = self.cached_run(spec, mechanism, repetitions, config_overrides)
        if cached is not None:
            return cached

        if self.trace_dir is not None:
            result, recorder = self.run_traced(
                spec, mechanism, repetitions=repetitions, **config_overrides
            )
            self._write_trace(spec, mechanism, recorder)
            return result

        context = self.context(spec)
        outcome = get_mechanism(mechanism).prepare(context)
        result = self.run_outcome(
            spec, outcome, repetitions=repetitions, **config_overrides
        )
        self.store_run(spec, mechanism, repetitions, config_overrides, result)
        return result

    def run_traced(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int] = None,
        trace: Optional[TraceRecorder] = None,
        process_events: bool = False,
        **config_overrides,
    ) -> Tuple[RunResult, TraceRecorder]:
        """Measure one cell with tracing on.

        Always re-simulates (events cannot come from the cache), then
        stores the result — whose numbers are byte-identical to the
        untraced run — *with* its :class:`TraceSummary` into both cache
        layers, upgrading any summary-less entry. Returns the result and
        the recorder (for export / Gantt rendering).
        """
        recorder = trace if trace is not None else TraceRecorder(
            process_events=process_events
        )
        context = self.context(spec)
        outcome = get_mechanism(mechanism).prepare(context)
        result = self.run_outcome(
            spec,
            outcome,
            repetitions=repetitions,
            trace=recorder,
            **config_overrides,
        )
        if outcome.search_stats is not None and result.trace_summary is not None:
            summary = replace(
                result.trace_summary,
                scheduler=outcome.search_stats.as_pairs(),
            )
            result = replace(result, trace_summary=summary)
        self.store_run(
            spec, mechanism, repetitions, config_overrides, result, force=True
        )
        return result, recorder

    def _write_trace(
        self, spec: WorkloadSpec, mechanism: str, recorder: TraceRecorder
    ) -> str:
        """Export a recorder to ``trace_dir`` (one JSON per cell)."""
        from repro.obs.export import write_chrome_trace

        os.makedirs(self.trace_dir, exist_ok=True)
        stem = re.sub(r"[^A-Za-z0-9._-]+", "_", f"{spec.label}-{mechanism}")
        path = os.path.join(self.trace_dir, f"{stem}.trace.json")
        return write_chrome_trace(recorder, path, board=self.board)

    def run_outcome(
        self,
        spec: WorkloadSpec,
        outcome: MechanismOutcome,
        repetitions: Optional[int] = None,
        shared_state_stages=frozenset(),
        trace: Optional[TraceRecorder] = None,
        **config_overrides,
    ) -> RunResult:
        """Measure an already-prepared mechanism outcome (not cached)."""
        profile = self.profile(spec)
        config_kwargs = {
            "latency_constraint_us_per_byte": spec.latency_constraint,
            "repetitions": repetitions or self.repetitions,
            "batches_per_repetition": self.batches_per_repetition,
            "seed": self.seed,
        }
        config_kwargs.update(config_overrides)
        config = ExecutionConfig(**config_kwargs)
        executor = PipelineExecutor(self.board, config, trace=trace)
        per_batch = self._window(profile, config.batches_per_repetition)
        with REGISTRY.timer("harness.simulate"):
            return executor.run(
                outcome.plan,
                per_batch,
                profile.batch_size_bytes,
                dynamics=outcome.dynamics,
                shared_state_stages=shared_state_stages,
            )

    def _window(self, profile: WorkloadProfile, batches: Optional[int] = None) -> List:
        batches = batches or self.batches_per_repetition
        per_batch = list(profile.per_batch_step_costs)
        while len(per_batch) < batches:
            per_batch.extend(profile.per_batch_step_costs)
        return per_batch[:batches]

    # -- grids -------------------------------------------------------------------

    def grid(
        self,
        specs: Sequence[WorkloadSpec],
        mechanisms: Sequence[str],
        jobs: Optional[int] = None,
        chunk: Optional[int] = None,
        **config_overrides,
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run a (workload × mechanism) grid, cached cell by cell.

        ``jobs > 1`` fans uncached cells out over worker processes (see
        :mod:`repro.bench.parallel`); the default comes from the
        harness's ``jobs`` (i.e. ``REPRO_PARALLEL``, else serial), and
        requests past ``os.cpu_count()`` are clamped with a warning.
        ``chunk`` groups that many cells into one worker task (default:
        about four task waves per worker). Cell results are identical
        either way — each cell is an independent, seeded DES run.
        """
        jobs = self.jobs if jobs is None else max(1, jobs)
        if chunk is None:
            chunk = self.chunk
        if jobs > 1:
            from repro.bench.parallel import run_grid

            return run_grid(
                self, specs, mechanisms, jobs=jobs, chunk=chunk,
                **config_overrides
            )
        results = {}
        for spec in specs:
            for mechanism in mechanisms:
                results[(spec.label, mechanism)] = self.run(
                    spec, mechanism, **config_overrides
                )
        return results


_DEFAULT: Optional[Harness] = None


def default_harness() -> Harness:
    """The process-wide shared harness (what the benches use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Harness()
    return _DEFAULT


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """Render an experiment table the way the paper's figures read."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)
