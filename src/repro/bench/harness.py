"""Experiment harness regenerating the paper's tables and figures.

The harness owns a process-wide cache of profiled workloads, workload
contexts and measurement runs, so the figure benches (which share many
cells — Fig 7 and Fig 8 are the same runs read out two ways) never
repeat a simulation.

Conventions:

* the default batch size is 64 KiB rather than the paper's 932 800 bytes
  — all metrics are batch-normalized (µs/byte, µJ/byte) so the operating
  point is unchanged, while pure-Python codecs stay fast; set
  ``REPRO_BATCH_BYTES`` to the paper's value for full parity;
* repetitions default to the paper's 100 (``REPRO_REPETITIONS``
  overrides; the test suite uses fewer).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.compression import get_codec
from repro.core.baselines import (
    MechanismOutcome,
    WorkloadContext,
    get_mechanism,
)
from repro.core.profiler import WorkloadProfile, profile_workload
from repro.datasets import get_dataset
from repro.errors import ConfigurationError
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.runtime.metrics import RunResult
from repro.simcore.boards import BoardSpec, rk3399

__all__ = ["WorkloadSpec", "Harness", "default_harness", "format_table"]

#: paper defaults
PAPER_LATENCY_CONSTRAINT = 26.0
PAPER_BATCH_BYTES = 932_800

DEFAULT_BATCH_BYTES = int(os.environ.get("REPRO_BATCH_BYTES", 65536))
DEFAULT_REPETITIONS = int(os.environ.get("REPRO_REPETITIONS", 100))


def _frozen(mapping: Optional[Mapping]) -> Tuple:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """One Algorithm-Dataset procedure (paper Definition 1)."""

    codec: str
    dataset: str
    codec_options: Tuple = ()
    dataset_options: Tuple = ()
    batch_size: int = DEFAULT_BATCH_BYTES
    latency_constraint: float = PAPER_LATENCY_CONSTRAINT

    @classmethod
    def of(
        cls,
        codec: str,
        dataset: str,
        codec_options: Optional[Mapping] = None,
        dataset_options: Optional[Mapping] = None,
        **overrides,
    ) -> "WorkloadSpec":
        return cls(
            codec=codec,
            dataset=dataset,
            codec_options=_frozen(codec_options),
            dataset_options=_frozen(dataset_options),
            **overrides,
        )

    @property
    def label(self) -> str:
        return f"{self.codec}-{self.dataset}"

    def make_codec(self):
        return get_codec(self.codec, **dict(self.codec_options))

    def make_dataset(self):
        return get_dataset(self.dataset, **dict(self.dataset_options))


class Harness:
    """Caching experiment runner."""

    def __init__(
        self,
        board: Optional[BoardSpec] = None,
        repetitions: int = DEFAULT_REPETITIONS,
        batches_per_repetition: int = 6,
        profile_batches: int = 4,
        seed: int = 0,
    ) -> None:
        self.board = board if board is not None else rk3399()
        self.repetitions = repetitions
        self.batches_per_repetition = batches_per_repetition
        self.profile_batches = profile_batches
        self.seed = seed
        self._profiles: Dict = {}
        self._contexts: Dict = {}
        self._runs: Dict = {}

    # -- cached building blocks ---------------------------------------------

    def profile(self, spec: WorkloadSpec) -> WorkloadProfile:
        key = (spec.codec, spec.codec_options, spec.dataset,
               spec.dataset_options, spec.batch_size)
        if key not in self._profiles:
            self._profiles[key] = profile_workload(
                spec.make_codec(),
                spec.make_dataset(),
                spec.batch_size,
                batches=max(self.profile_batches, self.batches_per_repetition),
                seed=self.seed,
            )
        return self._profiles[key]

    def context(
        self, spec: WorkloadSpec, frequency_map: Optional[Mapping] = None
    ) -> WorkloadContext:
        key = (spec.codec, spec.codec_options, spec.dataset,
               spec.dataset_options, spec.batch_size, spec.latency_constraint,
               _frozen(frequency_map))
        if key not in self._contexts:
            self._contexts[key] = WorkloadContext.build(
                self.board,
                self.profile(spec),
                spec.latency_constraint,
                seed=self.seed,
                frequency_map=dict(frequency_map) if frequency_map else None,
            )
        return self._contexts[key]

    # -- measurement -----------------------------------------------------------

    def run(
        self,
        spec: WorkloadSpec,
        mechanism: str,
        repetitions: Optional[int] = None,
        **config_overrides,
    ) -> RunResult:
        """Measure one (workload, mechanism) cell; results are cached."""
        repetitions = repetitions or self.repetitions
        key = (spec, mechanism, repetitions, _frozen(config_overrides))
        if key in self._runs:
            return self._runs[key]

        context = self.context(spec)
        outcome = get_mechanism(mechanism).prepare(context)
        result = self.run_outcome(
            spec, outcome, repetitions=repetitions, **config_overrides
        )
        self._runs[key] = result
        return result

    def run_outcome(
        self,
        spec: WorkloadSpec,
        outcome: MechanismOutcome,
        repetitions: Optional[int] = None,
        shared_state_stages=frozenset(),
        **config_overrides,
    ) -> RunResult:
        """Measure an already-prepared mechanism outcome (not cached)."""
        profile = self.profile(spec)
        config_kwargs = {
            "latency_constraint_us_per_byte": spec.latency_constraint,
            "repetitions": repetitions or self.repetitions,
            "batches_per_repetition": self.batches_per_repetition,
            "seed": self.seed,
        }
        config_kwargs.update(config_overrides)
        config = ExecutionConfig(**config_kwargs)
        executor = PipelineExecutor(self.board, config)
        per_batch = self._window(profile, config.batches_per_repetition)
        return executor.run(
            outcome.plan,
            per_batch,
            profile.batch_size_bytes,
            dynamics=outcome.dynamics,
            shared_state_stages=shared_state_stages,
        )

    def _window(self, profile: WorkloadProfile, batches: Optional[int] = None) -> List:
        batches = batches or self.batches_per_repetition
        per_batch = list(profile.per_batch_step_costs)
        while len(per_batch) < batches:
            per_batch.extend(profile.per_batch_step_costs)
        return per_batch[:batches]

    # -- grids -------------------------------------------------------------------

    def grid(
        self,
        specs: Sequence[WorkloadSpec],
        mechanisms: Sequence[str],
        **config_overrides,
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run a (workload × mechanism) grid, cached cell by cell."""
        results = {}
        for spec in specs:
            for mechanism in mechanisms:
                results[(spec.label, mechanism)] = self.run(
                    spec, mechanism, **config_overrides
                )
        return results


_DEFAULT: Optional[Harness] = None


def default_harness() -> Harness:
    """The process-wide shared harness (what the benches use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Harness()
    return _DEFAULT


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """Render an experiment table the way the paper's figures read."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)
