"""Process-parallel grid execution for the experiment harness.

The paper's evaluation grids are embarrassingly parallel: every
(workload, mechanism) cell is an independent, seeded discrete-event
simulation, and the GIL only serializes threads *inside* one run
(DESIGN.md's ``repro_why``), not separate interpreter processes. This
module fans :meth:`Harness.grid` cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* the parent first serves every cell it can from the in-memory and
  persistent caches, so a warm cache dispatches no workers at all;
* each worker's initializer rebuilds a private :class:`Harness` from a
  pickled payload — the (possibly non-default) board, the harness
  knobs, and the parent's **profile table** (the profile-sharing fast
  path: ``profile_workload`` re-compresses real data with pure-Python
  codecs, the single most repeated cost, so it is computed once in the
  parent, persisted, and shipped instead of recomputed per process);
* workers write their results into the shared persistent cache
  (atomic ``os.replace`` makes concurrent writers safe), and the parent
  merges the returned :class:`RunResult` objects back into its
  in-memory caches, so follow-up reads (Fig 8 re-reading Fig 7's grid)
  stay free.

Determinism: a cell's numbers depend only on the harness configuration
and the cell's seeds, never on which process ran it or in what order —
``run_grid`` with ``jobs=4``, ``jobs=1`` and a warm cache all return
identical results (tested in ``tests/test_parallel_cache.py``).
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import Harness, WorkloadSpec
from repro.runtime.metrics import RunResult

__all__ = ["run_grid", "default_jobs", "resolve_jobs", "PARALLEL_ENV"]

#: Environment knob: default worker count of ``run_grid`` (1 = serial).
PARALLEL_ENV = "REPRO_PARALLEL"


def default_jobs() -> int:
    """The env-configured default parallelism (serial when unset)."""
    return max(1, int(os.environ.get(PARALLEL_ENV, "1")))


def resolve_jobs(jobs: int) -> int:
    """Clamp a requested worker count to the machine's core count.

    Oversubscribing DES workers only adds context-switch overhead and
    memory pressure (each worker rebuilds a full harness), so a request
    past ``os.cpu_count()`` is clamped with a :class:`RuntimeWarning`
    rather than honored.
    """
    jobs = max(1, jobs)
    available = os.cpu_count() or 1
    if jobs > available:
        warnings.warn(
            f"requested jobs={jobs} exceeds cpu_count={available}; "
            f"clamping to {available}",
            RuntimeWarning,
            stacklevel=3,
        )
        return available
    return jobs


#: the per-process harness a worker builds in its initializer
_WORKER_HARNESS: Optional[Harness] = None


def _worker_initialize(payload_bytes: bytes) -> None:
    """Rebuild board/codec/harness state inside a fresh worker process."""
    global _WORKER_HARNESS
    payload = pickle.loads(payload_bytes)
    cache = None
    if payload["cache_directory"] is not None:
        from repro.bench.cache import ResultCache

        cache = ResultCache(
            payload["cache_directory"], salt=payload["cache_salt"]
        )
    harness = Harness(
        board=payload["board"],
        repetitions=payload["repetitions"],
        batches_per_repetition=payload["batches_per_repetition"],
        profile_batches=payload["profile_batches"],
        seed=payload["seed"],
        cache=cache,
        jobs=1,  # workers never nest process pools
    )
    harness.clear_caches()
    for key, profile in payload["profiles"].items():
        if profile.fingerprint() != payload["fingerprints"][key]:
            raise RuntimeError(
                f"profile {profile.codec_name}-{profile.dataset_name} "
                "was corrupted in transport to the worker"
            )
    harness._profiles.update(payload["profiles"])
    _WORKER_HARNESS = harness


def _run_chunk(
    cells: Sequence[Tuple[WorkloadSpec, str]],
    repetitions: Optional[int],
    config_overrides: Dict,
) -> List[RunResult]:
    """Run several cells in one worker task, in submission order.

    One task per *chunk* instead of per cell amortizes future/pickle
    round-trips, and every cell of the chunk reuses the worker harness's
    shipped profile table (the profile-sharing fast path) and in-memory
    caches without re-entering the pool's task queue.
    """
    return [
        _WORKER_HARNESS.run(
            spec, mechanism, repetitions=repetitions, **config_overrides
        )
        for spec, mechanism in cells
    ]


def _shipping_payload(harness: Harness, specs) -> bytes:
    """Pickle everything a worker needs to rebuild the harness."""
    for spec in specs:
        harness.profile(spec)  # profile-sharing fast path: compute once
    return pickle.dumps(
        {
            "board": harness.board,
            "repetitions": harness.repetitions,
            "batches_per_repetition": harness.batches_per_repetition,
            "profile_batches": harness.profile_batches,
            "seed": harness.seed,
            "cache_directory": (
                str(harness.cache.directory)
                if harness.cache is not None
                else None
            ),
            "cache_salt": (
                harness.cache.salt if harness.cache is not None else None
            ),
            "profiles": dict(harness._profiles),
            "fingerprints": {
                key: profile.fingerprint()
                for key, profile in harness._profiles.items()
            },
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def run_grid(
    harness: Harness,
    specs: Sequence[WorkloadSpec],
    mechanisms: Sequence[str],
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    **config_overrides,
) -> Dict[Tuple[str, str], RunResult]:
    """Run a (workload × mechanism) grid, fanning misses out over
    ``jobs`` worker processes in chunks of ``chunk`` cells.

    Drop-in equivalent of the serial :meth:`Harness.grid` loop: same
    return shape, same numbers, and every computed cell lands in the
    harness's caches. ``jobs`` is clamped to the machine's core count
    (:func:`resolve_jobs`). ``chunk`` is the number of cells dispatched
    per worker task; the default ``pending // (4 * jobs)`` keeps about
    four waves of tasks per worker — large enough to amortize dispatch,
    small enough that one slow cell cannot idle the pool. On a
    single-core machine, or when the uncached remainder is too small to
    make a second worker task, the parent falls back to the plain
    serial loop (no pool, no pickling).
    """
    specs = list(specs)
    mechanisms = list(mechanisms)
    jobs = harness.jobs if jobs is None else jobs
    jobs = resolve_jobs(jobs)
    repetitions = config_overrides.pop("repetitions", None)

    results: Dict[Tuple[str, str], RunResult] = {}
    pending = []
    for spec in specs:
        for mechanism in mechanisms:
            cached = harness.cached_run(
                spec, mechanism, repetitions, config_overrides
            )
            if cached is not None:
                results[(spec.label, mechanism)] = cached
            else:
                pending.append((spec, mechanism))

    if chunk is None:
        chunk = max(1, len(pending) // (4 * jobs))
    else:
        chunk = max(1, chunk)
    chunks = [
        pending[start:start + chunk]
        for start in range(0, len(pending), chunk)
    ]

    if jobs <= 1 or len(chunks) <= 1:
        for spec, mechanism in pending:
            results[(spec.label, mechanism)] = harness.run(
                spec, mechanism, repetitions=repetitions, **config_overrides
            )
        return results

    payload = _shipping_payload(
        harness, list(dict.fromkeys(spec for spec, _ in pending))
    )
    workers = min(jobs, len(chunks))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_initialize,
        initargs=(payload,),
    ) as pool:
        futures = [
            (cells, pool.submit(
                _run_chunk, cells, repetitions, dict(config_overrides)
            ))
            for cells in chunks
        ]
        for cells, future in futures:
            for (spec, mechanism), result in zip(cells, future.result()):
                results[(spec.label, mechanism)] = result
                harness.store_run(
                    spec, mechanism, repetitions, config_overrides, result
                )
    return results
