"""DAG-workload experiment: decompression pipelines on the grid.

The paper's three codecs are linear chains; the DAG generalization adds
two fork-join workloads — ``unlz4`` (LZ4 decode: parse fans out to
literal/match resolution, a merge joins them) and ``mltc`` (lossless
LTC: per-channel cone encoders between a splitter and a packer). This
experiment runs them through the same harness as the paper grid and
reports, per cell, the measured energy/latency next to the cost model's
*critical-path* estimate — the DAG analogue of the chain model's L_est,
and the number PLN005 feasibility is judged against.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.experiments import ExperimentResult, prefetch_grid
from repro.bench.harness import Harness, WorkloadSpec, default_harness
from repro.core.baselines import get_mechanism

__all__ = ["dag_decompression", "dag_specs"]

#: mechanisms worth comparing on fork-join shapes: the model-guided
#: plan, the kernel baseline, and the shape-blind round-robin
DAG_MECHANISMS = ("CStream", "OS", "RR")

DAG_CODECS = ("unlz4", "mltc")
DAG_DATASETS = ("rovio", "sensor")


def dag_specs() -> List[WorkloadSpec]:
    """The DAG decompression grid (2 codecs × 2 datasets)."""
    return [
        WorkloadSpec.of(codec, dataset)
        for codec in DAG_CODECS
        for dataset in DAG_DATASETS
    ]


def dag_decompression(
    harness: Optional[Harness] = None,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """Fork-join decompression workloads end to end.

    Columns: measured E and L per mechanism, plus the CStream plan's
    critical-path latency estimate so the model-vs-measured gap on DAG
    shapes is visible in one row.
    """
    harness = harness or default_harness()
    specs = dag_specs()
    prefetch_grid(harness, specs, DAG_MECHANISMS, repetitions)
    rows = []
    extras = {"cells": {}, "shapes": {}}
    for spec in specs:
        context = harness.context(spec)
        extras["shapes"][spec.label] = context.fine_graph.describe()
        outcome = get_mechanism("CStream").prepare(context)
        critical_path = outcome.estimate.critical_path_us_per_byte
        row = [spec.label]
        for mechanism in DAG_MECHANISMS:
            result = harness.run(spec, mechanism, repetitions=repetitions)
            extras["cells"][(spec.label, mechanism)] = result
            row.append(f"{result.mean_energy_uj_per_byte:.3f}")
            row.append(f"{result.mean_latency_us_per_byte:.2f}")
        row.append(f"{critical_path:.2f}")
        rows.append(tuple(row))
    headers = ["workload"]
    for mechanism in DAG_MECHANISMS:
        headers.append(f"{mechanism} E")
        headers.append(f"{mechanism} L")
    headers.append("critical path (µs/B)")
    return ExperimentResult(
        experiment_id="dag",
        title="fork-join decompression workloads (E µJ/B, L µs/B)",
        headers=tuple(headers),
        rows=rows,
        note="chains are the degenerate case of these pipelines; the "
        "critical-path column is the DAG generalization of L_est",
        extras=extras,
    )
