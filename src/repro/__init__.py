"""CStream reproduction: parallelizing stream compression on asymmetric
multicores (Zeng & Zhang, ICDE 2023).

Public entry points:

* :class:`repro.CStream` — the framework facade (profile → decompose →
  schedule → execute on the simulated rk3399);
* :mod:`repro.compression` — the three stream codecs with cost
  instrumentation;
* :mod:`repro.datasets` — workload generators (Sensor/Rovio/Stock/Micro);
* :mod:`repro.simcore` — the asymmetric-multicore board simulator;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

from repro.core.framework import CStream
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["CStream", "ReproError", "__version__"]
