"""Stock-profile dataset: exchange ticks with low key duplication.

The paper's Stock trace (Shanghai Stock Exchange) is packed as
``(32-bit key, 32-bit payload)`` binary tuples. Unlike Rovio, its key
duplication is much lower: order/trade identifiers are mostly unique.
Payloads are prices following a bounded random walk, so their dynamic
range is moderate and nearby payloads correlate without duplicating.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError

__all__ = ["StockDataset"]


class StockDataset(Dataset):
    """Synthetic stand-in for the Shanghai Stock Exchange trace.

    Parameters
    ----------
    instrument_count:
        Number of instruments whose prices random-walk independently.
    base_price, price_step:
        Random-walk parameters (prices stored as integer cents).
    """

    name = "stock"
    tuple_bytes = 8  # 32-bit key + 32-bit payload

    def __init__(
        self,
        instrument_count: int = 64,
        base_price: int = 2_500_000,
        price_step: int = 500,
    ) -> None:
        if instrument_count < 1:
            raise DatasetError("instrument_count must be positive")
        if base_price <= 0 or price_step <= 0:
            raise DatasetError("base_price and price_step must be positive")
        self.instrument_count = instrument_count
        self.base_price = base_price
        self.price_step = price_step

    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        if tuple_count == 0:
            return b""
        # Keys: monotonically increasing order ids with random gaps —
        # essentially unique, giving the trace's low key duplication.
        gaps = rng.integers(1, 8, size=tuple_count, dtype=np.uint32)
        keys = (np.cumsum(gaps, dtype=np.uint64) + (1 << 20)).astype(np.uint32)
        # Payloads: per-instrument price random walks, interleaved.
        instruments = rng.integers(0, self.instrument_count, size=tuple_count)
        steps = rng.integers(
            -self.price_step, self.price_step + 1, size=tuple_count
        )
        prices = np.full(self.instrument_count, self.base_price, dtype=np.int64)
        payloads = np.empty(tuple_count, dtype=np.uint32)
        for i in range(tuple_count):
            instrument = instruments[i]
            prices[instrument] = max(1, prices[instrument] + steps[i])
            payloads[i] = prices[instrument] & 0xFFFFFFFF
        tuples = np.empty(tuple_count * 2, dtype=np.uint32)
        tuples[0::2] = keys
        tuples[1::2] = payloads
        return tuples.tobytes()
