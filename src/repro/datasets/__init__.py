"""Workload datasets matching the paper's statistical profiles."""

from repro.datasets.base import Dataset
from repro.datasets.file import FileDataset
from repro.datasets.loaders import DATASET_NAMES, get_dataset
from repro.datasets.micro import DRIFT_KINDS, MicroDataset, drift_schedule
from repro.datasets.rovio import RovioDataset
from repro.datasets.sensor import SensorDataset
from repro.datasets.stock import StockDataset

__all__ = [
    "DATASET_NAMES",
    "DRIFT_KINDS",
    "Dataset",
    "drift_schedule",
    "FileDataset",
    "MicroDataset",
    "RovioDataset",
    "SensorDataset",
    "StockDataset",
    "get_dataset",
]
