"""Dataset abstraction for stream workloads.

The paper evaluates on three real traces (Sensor, Rovio, Stock) and one
synthetic dataset (Micro). The traces are not redistributable, so each
dataset here is a seeded generator that reproduces the trace's *published
statistical profile* — tuple layout, duplication levels, entropy — which
is all the evaluation depends on (see DESIGN.md's substitution table).

A dataset produces an endless logical stream; :meth:`Dataset.generate`
materializes a prefix and :meth:`Dataset.stream` slices it into batches
(the paper's Definition 1 compresses batch by batch).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.errors import DatasetError

__all__ = ["Dataset"]


class Dataset(abc.ABC):
    """A reproducible stream-data generator."""

    #: registry name, e.g. ``"rovio"``
    name: str = ""
    #: size of one logical tuple in bytes
    tuple_bytes: int = 4

    @abc.abstractmethod
    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        """Produce ``tuple_count`` tuples' worth of raw bytes."""

    def generate(self, total_bytes: int, seed: int = 0) -> bytes:
        """Materialize ``total_bytes`` of stream data (rounded down to a
        whole number of tuples)."""
        if total_bytes < 0:
            raise DatasetError(f"total_bytes must be non-negative, got {total_bytes}")
        tuple_count = total_bytes // self.tuple_bytes
        rng = np.random.default_rng(seed)
        data = self._generate_tuples(tuple_count, rng)
        expected = tuple_count * self.tuple_bytes
        if len(data) != expected:
            raise DatasetError(
                f"{self.name} generator produced {len(data)} bytes, "
                f"expected {expected}"
            )
        return data

    def stream(
        self, batch_size: int, batch_count: int, seed: int = 0
    ) -> Iterator[bytes]:
        """Yield ``batch_count`` batches of ``batch_size`` bytes each.

        Batch sizes are rounded down to a whole number of tuples so every
        batch splits cleanly into 32-bit symbols.
        """
        if batch_size < self.tuple_bytes:
            raise DatasetError(
                f"batch_size {batch_size} smaller than one {self.name} tuple "
                f"({self.tuple_bytes} bytes)"
            )
        usable = batch_size - batch_size % self.tuple_bytes
        data = self.generate(usable * batch_count, seed=seed)
        for index in range(batch_count):
            yield data[index * usable:(index + 1) * usable]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Dataset {self.name!r} tuple_bytes={self.tuple_bytes}>"
