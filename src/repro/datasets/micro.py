"""Micro: the paper's controllable synthetic dataset of 32-bit values.

Each tuple is one 32-bit plain value. Three knobs, matching §VII-B's
sensitivity axes, can be tuned independently:

* ``dynamic_range`` — values are drawn uniformly from ``[0, range)``, so
  the mean significant-bit count (what tcomp32's output tracks) follows
  directly;
* ``symbol_duplication`` — target fraction of 32-bit symbols that repeat
  a recently emitted symbol (what tdic32's dictionary hit rate tracks);
* ``vocabulary_duplication`` — target fraction of 64-bit vocabularies
  (aligned symbol pairs) that repeat an earlier vocabulary within lz4's
  window (what lz4's match rate tracks).

Duplication is produced by re-emitting entries from a bounded recency
pool, so repeats land well inside both tdic32's hash table lifetime and
lz4's 64 KiB offset window.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError

__all__ = ["MicroDataset", "DRIFT_KINDS", "drift_schedule"]

_POOL_SIZE = 512

#: drift-scenario shapes for the online control loop's experiments
DRIFT_KINDS = ("ramp", "burst", "phase-shift")


def drift_schedule(
    kind: str,
    batches: int,
    low: int = 500,
    high: int = 50_000,
    change_at: int = None,
    burst_batches: int = None,
) -> tuple:
    """Per-batch ``dynamic_range`` values for a drifting Micro stream.

    Three canonical shapes (§VII-B's sensitivity knob swept over time):

    * ``ramp`` — geometric interpolation from ``low`` to ``high`` across
      the whole stream (slow continuous drift);
    * ``burst`` — ``low`` everywhere except ``burst_batches`` batches of
      ``high`` starting at ``change_at`` (transient spike the controller
      should *not* chase);
    * ``phase-shift`` — ``low`` before ``change_at``, ``high`` after
      (the Fig 9 step change: a durable regime switch worth migrating
      for).

    Purely arithmetic — no RNG — so schedules are trivially
    deterministic; the dataset seeds do the randomizing.
    """
    if batches < 1:
        raise DatasetError("drift schedule needs at least one batch")
    if low < 2 or high < 2:
        raise DatasetError("dynamic ranges must be >= 2")
    if change_at is None:
        change_at = batches // 3
    if burst_batches is None:
        burst_batches = max(batches // 6, 1)
    if not 0 <= change_at <= batches:
        raise DatasetError(f"change_at must be in [0, {batches}]")
    if kind == "ramp":
        if batches == 1:
            return (low,)
        ratio = (high / low) ** (1.0 / (batches - 1))
        return tuple(
            int(round(low * ratio ** index)) for index in range(batches)
        )
    if kind == "burst":
        return tuple(
            high if change_at <= index < change_at + burst_batches else low
            for index in range(batches)
        )
    if kind == "phase-shift":
        return tuple(
            high if index >= change_at else low for index in range(batches)
        )
    raise DatasetError(
        f"unknown drift kind {kind!r}; expected one of {DRIFT_KINDS}"
    )


class MicroDataset(Dataset):
    """Synthetic 32-bit value stream with tunable statistics."""

    name = "micro"
    tuple_bytes = 4

    def __init__(
        self,
        dynamic_range: int = 500,
        symbol_duplication: float = 0.0,
        vocabulary_duplication: float = 0.0,
    ) -> None:
        if dynamic_range < 2:
            raise DatasetError(f"dynamic_range must be >= 2, got {dynamic_range}")
        if dynamic_range > 1 << 32:
            raise DatasetError("dynamic_range must fit 32 bits")
        for knob_name, knob in (
            ("symbol_duplication", symbol_duplication),
            ("vocabulary_duplication", vocabulary_duplication),
        ):
            if not 0.0 <= knob <= 1.0:
                raise DatasetError(f"{knob_name} must be in [0, 1], got {knob}")
        self.dynamic_range = dynamic_range
        self.symbol_duplication = symbol_duplication
        self.vocabulary_duplication = vocabulary_duplication

    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        if tuple_count == 0:
            return b""
        if self.vocabulary_duplication > 0.0:
            return self._generate_vocabulary_stream(tuple_count, rng)
        return self._generate_symbol_stream(tuple_count, rng)

    def _generate_symbol_stream(
        self, tuple_count: int, rng: np.random.Generator
    ) -> bytes:
        fresh = rng.integers(
            0, self.dynamic_range, size=tuple_count, dtype=np.uint32
        )
        if self.symbol_duplication <= 0.0:
            return fresh.tobytes()
        # Re-emit from a bounded recency pool with the target probability.
        values = np.empty(tuple_count, dtype=np.uint32)
        reuse = rng.random(tuple_count) < self.symbol_duplication
        pool_picks = rng.integers(0, _POOL_SIZE, size=tuple_count)
        pool = fresh[rng.integers(0, tuple_count, size=_POOL_SIZE)].copy()
        for i in range(tuple_count):
            if reuse[i] and i > 0:
                values[i] = pool[pool_picks[i]]
            else:
                values[i] = fresh[i]
                pool[pool_picks[i]] = fresh[i]
        return values.tobytes()

    def _generate_vocabulary_stream(
        self, tuple_count: int, rng: np.random.Generator
    ) -> bytes:
        """Generate in aligned 64-bit vocabulary units (symbol pairs).

        Repeats come in *bursts*: when a vocabulary repeats, a short run
        of consecutive earlier vocabularies is replayed, with the mean
        run length growing with the duplication level. This mirrors real
        duplicated payloads (repeated records, not isolated words) and
        gives an LZ-family codec progressively longer matches as
        duplication rises.
        """
        duplication = self.vocabulary_duplication
        pair_count = (tuple_count + 1) // 2
        fresh = rng.integers(
            0, self.dynamic_range, size=(pair_count, 2), dtype=np.uint32
        )
        # Mean burst length ~2 at low duplication, up to ~9 towards 1.0;
        # the trigger probability is scaled down so the duplicated
        # *fraction* of pairs still matches the requested level.
        geometric_p = max(1.0 - duplication, 0.04)
        mean_run = 1.0 + 1.0 / geometric_p
        trigger = duplication / (mean_run * (1.0 - duplication) + duplication)
        reuse = rng.random(pair_count) < trigger
        run_lengths = 1 + rng.geometric(geometric_p, size=pair_count)
        pairs = np.empty((pair_count, 2), dtype=np.uint32)
        i = 0
        while i < pair_count:
            if reuse[i] and i > 1:
                run = int(min(run_lengths[i], i, pair_count - i))
                start = int(rng.integers(0, i - run + 1))
                pairs[i:i + run] = pairs[start:start + run]
                i += run
            else:
                pairs[i] = fresh[i]
                i += 1
        return pairs.reshape(-1)[:tuple_count].tobytes()
