"""File-backed datasets: run the framework on real captured traces.

The built-in generators match the paper traces' *statistical profiles*;
when an actual capture is available (a binary tuple dump from the
field), :class:`FileDataset` feeds it through the same interface, so
profiling, scheduling and measurement run unchanged on real data:

>>> dataset = FileDataset("capture.bin", tuple_bytes=16)   # doctest: +SKIP
>>> framework = CStream(codec="lz4", dataset=dataset, ...) # doctest: +SKIP

The file is read lazily per batch; ``repeat=True`` (default) wraps
around when the stream needs more data than the capture holds, which
keeps long measurement campaigns running on short captures.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError

__all__ = ["FileDataset"]


class FileDataset(Dataset):
    """A stream backed by a binary trace file."""

    name = "file"

    def __init__(
        self, path: str, tuple_bytes: int = 4, repeat: bool = True
    ) -> None:
        if tuple_bytes < 1:
            raise DatasetError("tuple_bytes must be positive")
        if not os.path.exists(path):
            raise DatasetError(f"trace file not found: {path}")
        size = os.path.getsize(path)
        if size < tuple_bytes:
            raise DatasetError(
                f"trace file {path} holds less than one tuple "
                f"({size} < {tuple_bytes} bytes)"
            )
        self.path = path
        self.tuple_bytes = tuple_bytes
        self.repeat = repeat
        self._usable_bytes = size - size % tuple_bytes

    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        """Read (and, if allowed, wrap) the capture; ``rng`` picks the
        starting offset so different seeds see different phases."""
        needed = tuple_count * self.tuple_bytes
        if needed == 0:
            return b""
        if not self.repeat and needed > self._usable_bytes:
            raise DatasetError(
                f"trace file {self.path} holds {self._usable_bytes} usable "
                f"bytes, {needed} requested (set repeat=True to wrap)"
            )
        start_tuple = int(
            rng.integers(0, self._usable_bytes // self.tuple_bytes)
        )
        start = start_tuple * self.tuple_bytes
        with open(self.path, "rb") as source:
            source.seek(start)
            data = source.read(min(needed, self._usable_bytes - start))
            while len(data) < needed:
                source.seek(0)
                data += source.read(
                    min(needed - len(data), self._usable_bytes)
                )
        return data[:needed]
