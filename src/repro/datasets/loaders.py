"""Dataset registry, mirroring the codec registry."""

from __future__ import annotations

from typing import Dict, Type

from repro.datasets.base import Dataset
from repro.datasets.micro import MicroDataset
from repro.datasets.rovio import RovioDataset
from repro.datasets.sensor import SensorDataset
from repro.datasets.stock import StockDataset
from repro.errors import ConfigurationError

__all__ = ["DATASET_NAMES", "get_dataset"]

_REGISTRY: Dict[str, Type[Dataset]] = {
    SensorDataset.name: SensorDataset,
    RovioDataset.name: RovioDataset,
    StockDataset.name: StockDataset,
    MicroDataset.name: MicroDataset,
}

#: Names of all registered datasets, in the paper's order.
DATASET_NAMES = ("sensor", "rovio", "stock", "micro")


def get_dataset(name: str, **options) -> Dataset:
    """Instantiate a dataset generator by registry name.

    ``options`` are forwarded to the dataset constructor (e.g.
    ``get_dataset("micro", dynamic_range=50000)``).
    """
    try:
        dataset_class = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}")
    return dataset_class(**options)
