"""Sensor-profile dataset: XML-packed full-text sensor readings.

The paper's Sensor trace (Chicago beach weather stations) is full-text
streaming data from automated sensors: ASCII-only XML whose markup
repeats from record to record (partial vocabulary duplication) while the
embedded measurements drift slowly (low symbol entropy — digits and tag
characters only). Following the paper, every 16 ASCII characters form one
128-bit tuple.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError

__all__ = ["SensorDataset"]

# One 16-character record: '<sNNNN v=VVVVV/>' — station tag repeats
# (vocabulary duplication), value digits drift (low entropy).
_RECORD_TEMPLATE = "<s%04d v=%05d/>"
_RECORD_BYTES = 16


class SensorDataset(Dataset):
    """Synthetic stand-in for the beach-weather-station XML trace.

    Parameters
    ----------
    station_count:
        Number of stations cycling through the stream; fewer stations
        mean more repeated markup.
    value_walk_step:
        Maximum per-record drift of a station's measurement.
    """

    name = "sensor"
    tuple_bytes = _RECORD_BYTES

    def __init__(self, station_count: int = 16, value_walk_step: int = 25) -> None:
        if station_count < 1:
            raise DatasetError("station_count must be positive")
        if not 1 <= station_count <= 9999:
            raise DatasetError("station_count must fit the 4-digit tag")
        if value_walk_step < 1:
            raise DatasetError("value_walk_step must be positive")
        self.station_count = station_count
        self.value_walk_step = value_walk_step

    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        if tuple_count == 0:
            return b""
        values = rng.integers(10_000, 60_000, size=self.station_count)
        steps = rng.integers(
            -self.value_walk_step, self.value_walk_step + 1, size=tuple_count
        )
        stations = rng.integers(0, self.station_count, size=tuple_count)
        records = []
        for i in range(tuple_count):
            station = int(stations[i])
            values[station] = int(
                np.clip(values[station] + steps[i], 0, 99_999)
            )
            records.append(_RECORD_TEMPLATE % (station, values[station]))
        text = "".join(records)
        data = text.encode("ascii")
        if len(data) != tuple_count * _RECORD_BYTES:
            raise DatasetError("sensor record template produced a wrong length")
        return data
