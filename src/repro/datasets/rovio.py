"""Rovio-profile dataset: game-telemetry tuples with high key duplication.

The paper's Rovio trace monitors user actions of a mobile game and is
packed as ``(64-bit key, 64-bit payload)``. Its defining statistical
property is *high key duplication* (a small population of hot users/
sessions), which in turn yields significant vocabulary duplication — the
repeated 64-bit keys are exactly the vocabularies lz4 matches on. The
payloads (timestamps, coordinates) are effectively full-range values, so
the symbol dynamic range stays near 32 bits.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError

__all__ = ["RovioDataset"]


class RovioDataset(Dataset):
    """Synthetic stand-in for the Rovio game-telemetry trace.

    Parameters
    ----------
    key_population:
        Number of distinct keys in the hot set. The default (256) gives
        the trace's "high key duplication" at any realistic batch size.
    zipf_exponent:
        Skew of key popularity; >1 concentrates traffic on few keys.
    """

    name = "rovio"
    tuple_bytes = 16  # 64-bit key + 64-bit payload

    def __init__(self, key_population: int = 256, zipf_exponent: float = 1.2) -> None:
        if key_population < 1:
            raise DatasetError("key_population must be positive")
        if zipf_exponent <= 0:
            raise DatasetError("zipf_exponent must be positive")
        self.key_population = key_population
        self.zipf_exponent = zipf_exponent

    def _generate_tuples(self, tuple_count: int, rng: np.random.Generator) -> bytes:
        if tuple_count == 0:
            return b""
        # A fixed hot set of 64-bit keys, ranked by a Zipf popularity law.
        key_values = rng.integers(
            1 << 32, 1 << 63, size=self.key_population, dtype=np.uint64
        )
        ranks = np.arange(1, self.key_population + 1, dtype=np.float64)
        weights = ranks ** -self.zipf_exponent
        weights /= weights.sum()
        keys = key_values[
            rng.choice(self.key_population, size=tuple_count, p=weights)
        ]
        payloads = rng.integers(0, 1 << 63, size=tuple_count, dtype=np.uint64)
        tuples = np.empty(tuple_count * 2, dtype=np.uint64)
        tuples[0::2] = keys
        tuples[1::2] = payloads
        return tuples.tobytes()
