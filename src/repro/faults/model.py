"""Declarative fault plans: typed hardware/stream faults on a schedule.

The executor's original fault surface was one
:class:`~repro.runtime.executor.FaultSpec` — a single thermal throttle.
Real boards degrade in more ways than that, so a
:class:`FaultPlan` generalizes it to a seeded schedule of typed events:

* :class:`CoreFailure` — a core dies permanently after ``at_batch``
  batches complete; its in-flight work is lost and re-enqueued on a
  deterministic same-cluster fallback, and everything later routed to
  the dead core pays an emergency-rerouting penalty until the control
  loop adopts a plan that avoids it;
* :class:`CoreStall` — a transient stall (thermal hiccup, RCU storm):
  the core's next task pays ``stall_us`` extra occupancy once;
* :class:`DvfsThrottle` — the existing ``FaultSpec`` semantics: a
  permanent frequency cap (the SoC's thermal governor stepping in);
* :class:`InterconnectDegradation` — one path class (c0/c1/c2) loses
  bandwidth: per-byte cost and per-message overhead scale by ``factor``;
* :class:`BatchCorruption` — each delivered batch in a range is corrupt
  with ``probability``; the sink detects corruption via decode
  verification and retries with capped exponential backoff, so the
  batch's latency (and energy) inflates before it can count as a
  constraint violation.

Board-level events extend the same plan to the fleet tier
(:mod:`repro.fleet`): a :class:`BoardCrash` kills a whole board (all
cores, all tenants) at a window boundary, optionally rebooting after a
fixed number of windows; a :class:`BoardReboot` brings a crashed board
back explicitly; a :class:`BoardThrottle` is a sustained thermal cap on
every core of a board (the fleet analogue of :class:`DvfsThrottle`).
Board events are keyed by *window*, not batch — the fleet gateway ticks
in windows — and are ignored by the single-board executor, so a fault
plan that mixes both levels drives a fleet scenario and its per-board
inner sessions from one declarative object.

Determinism: corruption draws come from a dedicated
``default_rng(plan.seed, repetition)`` stream computed *before* the
simulation starts (:func:`corruption_schedule`), so the schedule is
byte-identical regardless of process interleaving and never perturbs
the simulation's own RNG draw order. Batch-indexed events fire at batch
boundaries in plan order. ``repetition=None`` fires the event in every
repetition (the legacy ``FaultSpec`` behaviour); an integer restricts
it to that repetition only.

Layering: this module imports only :mod:`repro.errors` and numpy, so
both the runtime executor and the bench harness can depend on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "CoreFailure",
    "CoreStall",
    "DvfsThrottle",
    "InterconnectDegradation",
    "BatchCorruption",
    "BoardCrash",
    "BoardReboot",
    "BoardThrottle",
    "FaultEvent",
    "BoardEvent",
    "FaultPlan",
    "CorruptedBatch",
    "FiredFault",
    "corruption_schedule",
]

#: path-class names an :class:`InterconnectDegradation` may target
_DEGRADABLE_PATHS = ("c0", "c1", "c2")


def _check_batch(at_batch: int) -> None:
    if at_batch < 0:
        raise ConfigurationError("at_batch must be non-negative")


def _check_repetition(repetition: Optional[int]) -> None:
    if repetition is not None and repetition < 0:
        raise ConfigurationError("repetition must be non-negative (or None)")


@dataclass(frozen=True)
class CoreFailure:
    """Permanent core failure after ``at_batch`` batches complete.

    ``reroute_penalty`` is the relative latency/energy surcharge on work
    emergency-routed off the dead core (threads running without their
    planned placement: cold caches, doubled-up queues). It persists
    until a replan stops referencing the dead core.
    """

    core_id: int
    at_batch: int
    repetition: Optional[int] = None
    reroute_penalty: float = 0.5

    kind = "core-failure"

    def __post_init__(self) -> None:
        _check_batch(self.at_batch)
        _check_repetition(self.repetition)
        if self.reroute_penalty < 0:
            raise ConfigurationError("reroute_penalty must be non-negative")


@dataclass(frozen=True)
class CoreStall:
    """Transient stall: the core's next task pays ``stall_us`` once."""

    core_id: int
    at_batch: int
    stall_us: float
    repetition: Optional[int] = None

    kind = "core-stall"

    def __post_init__(self) -> None:
        _check_batch(self.at_batch)
        _check_repetition(self.repetition)
        if self.stall_us <= 0:
            raise ConfigurationError("stall_us must be positive")


@dataclass(frozen=True)
class DvfsThrottle:
    """Permanent frequency cap (the legacy ``FaultSpec`` semantics)."""

    core_id: int
    at_batch: int
    frequency_mhz: float
    repetition: Optional[int] = None

    kind = "dvfs-throttle"

    def __post_init__(self) -> None:
        _check_batch(self.at_batch)
        _check_repetition(self.repetition)
        if self.frequency_mhz <= 0:
            raise ConfigurationError("capped frequency must be positive")


@dataclass(frozen=True)
class InterconnectDegradation:
    """One path class loses bandwidth: its per-byte unit cost and
    per-message overhead scale by ``factor`` (contention, link retrain)."""

    at_batch: int
    path: str
    factor: float
    repetition: Optional[int] = None

    kind = "interconnect-degradation"

    def __post_init__(self) -> None:
        _check_batch(self.at_batch)
        _check_repetition(self.repetition)
        if self.path not in _DEGRADABLE_PATHS:
            raise ConfigurationError(
                f"degradable paths are {_DEGRADABLE_PATHS}, not {self.path!r}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                "degradation factor must be >= 1 (a speed-up is not a fault)"
            )


@dataclass(frozen=True)
class BatchCorruption:
    """Probabilistic batch corruption over ``[from_batch, until_batch)``.

    Each delivery of a covered batch is corrupt with ``probability``
    (retries redraw — a retried batch can be corrupt again). The sink
    detects corruption by decode verification and re-runs the final
    stage after a capped exponential backoff
    (``min(backoff_us * 2**attempt, backoff_cap_us)``), at most
    ``max_retries`` times; an exhausted batch is delivered as-is and its
    inflated latency is what the violation accounting sees. When several
    corruption events cover one batch, the first in plan order governs.
    """

    probability: float
    from_batch: int = 0
    until_batch: Optional[int] = None
    max_retries: int = 3
    backoff_us: float = 200.0
    backoff_cap_us: float = 1600.0
    repetition: Optional[int] = None

    kind = "batch-corruption"

    def __post_init__(self) -> None:
        _check_repetition(self.repetition)
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        if self.from_batch < 0:
            raise ConfigurationError("from_batch must be non-negative")
        if self.until_batch is not None and self.until_batch <= self.from_batch:
            raise ConfigurationError("until_batch must exceed from_batch")
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be at least 1")
        if self.backoff_us < 0 or self.backoff_cap_us < self.backoff_us:
            raise ConfigurationError(
                "need 0 <= backoff_us <= backoff_cap_us"
            )

    def covers(self, batch_index: int) -> bool:
        if batch_index < self.from_batch:
            return False
        return self.until_batch is None or batch_index < self.until_batch


def _check_window(at_window: int) -> None:
    if at_window < 0:
        raise ConfigurationError("at_window must be non-negative")


def _check_board(board_index: int) -> None:
    if board_index < 0:
        raise ConfigurationError("board_index must be non-negative")


@dataclass(frozen=True)
class BoardCrash:
    """A whole board dies at window ``at_window`` (power loss, kernel
    panic, watchdog reset). Every tenant placed on it is stranded until
    the fleet scheduler re-places them; window RPCs to the board time
    out. ``reboot_after_windows`` brings the board back automatically
    that many windows later (None: it stays down)."""

    board_index: int
    at_window: int
    reboot_after_windows: Optional[int] = None

    kind = "board-crash"

    def __post_init__(self) -> None:
        _check_board(self.board_index)
        _check_window(self.at_window)
        if self.reboot_after_windows is not None and (
            self.reboot_after_windows < 1
        ):
            raise ConfigurationError(
                "reboot_after_windows must be at least 1 (or None)"
            )


@dataclass(frozen=True)
class BoardReboot:
    """A crashed board comes back at window ``at_window`` — cold, empty
    (its tenants were lost or migrated), and behind a half-open circuit
    breaker until a probe window succeeds."""

    board_index: int
    at_window: int

    kind = "board-reboot"

    def __post_init__(self) -> None:
        _check_board(self.board_index)
        _check_window(self.at_window)


@dataclass(frozen=True)
class BoardThrottle:
    """Sustained thermal throttle on every core of a board from window
    ``at_window``: the fleet analogue of :class:`DvfsThrottle`. Each
    tenant's heartbeat reports the capped frequency, so their embedded
    controllers replan around it; ``duration_windows`` lifts the cap
    again (None: it persists)."""

    board_index: int
    at_window: int
    frequency_mhz: float
    duration_windows: Optional[int] = None

    kind = "board-throttle"

    def __post_init__(self) -> None:
        _check_board(self.board_index)
        _check_window(self.at_window)
        if self.frequency_mhz <= 0:
            raise ConfigurationError("capped frequency must be positive")
        if self.duration_windows is not None and self.duration_windows < 1:
            raise ConfigurationError(
                "duration_windows must be at least 1 (or None)"
            )


FaultEvent = Union[
    CoreFailure, CoreStall, DvfsThrottle, InterconnectDegradation,
    BatchCorruption, BoardCrash, BoardReboot, BoardThrottle,
]

BoardEvent = Union[BoardCrash, BoardReboot, BoardThrottle]

#: events that fire at a batch boundary (corruption is per-delivery)
_BOUNDARY_EVENTS = (
    CoreFailure, CoreStall, DvfsThrottle, InterconnectDegradation,
)

#: fleet-level events, keyed by window; the single-board executor
#: ignores them entirely
_BOARD_EVENTS = (BoardCrash, BoardReboot, BoardThrottle)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events for one measurement."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(
                event, _BOUNDARY_EVENTS + (BatchCorruption,) + _BOARD_EVENTS
            ):
                raise ConfigurationError(
                    f"not a fault event: {event!r}"
                )

    @property
    def is_empty(self) -> bool:
        return not self.events

    def events_for(self, repetition: int) -> Tuple[FaultEvent, ...]:
        """The events active in ``repetition`` (None = every repetition).

        Board-level events carry no repetition (the fleet tier runs one
        window sequence, not repeated measurements) and are excluded.
        """
        return tuple(
            event for event in self.events
            if not isinstance(event, _BOARD_EVENTS)
            and (event.repetition is None or event.repetition == repetition)
        )

    def board_events(self) -> Tuple[BoardEvent, ...]:
        """The fleet-level events, in plan order."""
        return tuple(
            event for event in self.events
            if isinstance(event, _BOARD_EVENTS)
        )

    def board_schedule(self) -> Dict[int, Tuple[BoardEvent, ...]]:
        """Board-level events keyed by window index.

        A key of ``w`` fires at the *start* of window ``w``, before that
        window's admissions and RPCs — a board crashed at window 4 times
        out its window-4 RPC. Implicit reboots
        (``BoardCrash.reboot_after_windows``) are materialized as
        :class:`BoardReboot` entries so consumers see one schedule.
        """
        schedule: Dict[int, List[BoardEvent]] = {}
        for event in self.board_events():
            schedule.setdefault(event.at_window, []).append(event)
            if (
                isinstance(event, BoardCrash)
                and event.reboot_after_windows is not None
            ):
                reboot = BoardReboot(
                    board_index=event.board_index,
                    at_window=event.at_window + event.reboot_after_windows,
                )
                schedule.setdefault(reboot.at_window, []).append(reboot)
        return {window: tuple(events) for window, events in schedule.items()}

    def schedule_for(
        self, repetition: int
    ) -> Dict[int, Tuple[FaultEvent, ...]]:
        """Batch-boundary events keyed by completed-batch count.

        A key of ``n`` fires after the ``n``-th batch completes (so
        ``at_batch=0`` never fires — the legacy ``FaultSpec`` semantics,
        which compared *after* incrementing the completion counter).
        """
        schedule: Dict[int, List[FaultEvent]] = {}
        for event in self.events_for(repetition):
            if isinstance(event, _BOUNDARY_EVENTS):
                schedule.setdefault(event.at_batch, []).append(event)
        return {batch: tuple(events) for batch, events in schedule.items()}

    def corruptions(self, repetition: int) -> Tuple[BatchCorruption, ...]:
        return tuple(
            event for event in self.events_for(repetition)
            if isinstance(event, BatchCorruption)
        )

    def fingerprint(self) -> str:
        """Stable digest for cache keys: a faulted cell must never
        collide with a fault-free one (or with a differently-faulted
        one). ``repr`` covers every field of every event plus the seed."""
        payload = f"fault-plan:{self!r}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class CorruptedBatch:
    """Pre-drawn corruption outcome of one batch delivery.

    ``backoff_us`` holds one entry per retry (capped exponential);
    ``exhausted`` marks a batch that used all its retries.
    """

    attempts: int
    backoff_us: Tuple[float, ...]
    exhausted: bool


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired during a run (for reporting)."""

    kind: str
    ts_us: float
    batch: int
    core_id: int = -1
    detail: str = ""


def corruption_schedule(
    plan: FaultPlan, repetition: int, batch_count: int
) -> Dict[int, CorruptedBatch]:
    """Pre-draw every batch's corruption outcome for one repetition.

    Drawn from a dedicated RNG stream (independent of the simulation's
    service-noise stream) before the DES starts, so the schedule cannot
    depend on event interleaving and the fault-free draw order is
    untouched. Clean batches are omitted from the returned mapping, so
    the executor's per-batch lookup is a no-op guard on healthy runs.
    """
    events = plan.corruptions(repetition)
    if not events:
        return {}
    rng = np.random.default_rng([plan.seed, 104729 + repetition])
    schedule: Dict[int, CorruptedBatch] = {}
    for batch_index in range(batch_count):
        event = next((e for e in events if e.covers(batch_index)), None)
        if event is None:
            continue
        attempts = 0
        while attempts < event.max_retries and rng.random() < event.probability:
            attempts += 1
        if attempts == 0:
            continue
        backoffs = tuple(
            min(event.backoff_us * (2.0 ** attempt), event.backoff_cap_us)
            for attempt in range(attempts)
        )
        schedule[batch_index] = CorruptedBatch(
            attempts=attempts,
            backoff_us=backoffs,
            exhausted=attempts >= event.max_retries,
        )
    return schedule
