"""Chaos sessions: static vs adaptive arms under injected faults.

Glue used by ``cstream chaos`` and :mod:`repro.bench.exp_chaos`: build
one fault scenario (a :class:`~repro.faults.model.FaultPlan` aimed at
the static plan's most load-bearing core), then run the same windowed
session three ways — fault-free static (the healthy baseline the energy
overhead is measured against), faulted static (``controller=None``: it
limps along on emergency reroutes forever) and faulted adaptive (a
:class:`~repro.control.controller.SessionController` whose failover
path replans over the surviving cores). All three share the stream, the
window structure and the seed, so the differences are the fault and the
control loop alone.

The session's latency constraint is derived from the static plan's own
modeled latency times ``latency_margin`` — tight enough that degraded
hardware violates it, loose enough that the healthy plan (and a good
replacement plan) meets it. That is what makes "the adaptive arm ends
with strictly fewer steady-state violations" a meaningful acceptance
bar rather than an artifact of an arbitrary constraint.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.control.controller import ControllerConfig, SessionController
from repro.control.session import finalize_session_health
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.obs.health import SessionHealth
from repro.obs.residuals import TelemetryCollector
from repro.faults.model import (
    BatchCorruption,
    CoreFailure,
    CoreStall,
    DvfsThrottle,
    FaultPlan,
    InterconnectDegradation,
)
from repro.runtime.executor import (
    ExecutionConfig,
    PipelineExecutor,
    SessionResult,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosSpec",
    "ChaosComparison",
    "build_fault_plan",
    "run_chaos_session",
]

#: named fault scenarios ``cstream chaos`` and the bench experiment sweep
CHAOS_SCENARIOS = (
    "core-failure",
    "throttle",
    "stall",
    "interconnect",
    "corruption",
    "core-failure+corruption",
)


@dataclass(frozen=True)
class ChaosSpec:
    """One fault scenario for a chaos session."""

    codec: str = "tcomp32"
    dataset: str = "rovio"
    #: batch size in bytes (None: the harness' default workload size)
    batch_bytes: Optional[int] = None
    scenario: str = "core-failure"
    batches: int = 18
    window_batches: int = 3
    warmup_batches: int = 2
    #: the batch boundary at which hardware faults fire
    fault_batch: int = 7
    #: session L_set = static plan's modeled latency x this margin
    latency_margin: float = 1.35
    #: surcharge on emergency-rerouted work after a core failure: the
    #: batch re-executes cold — state re-fetched over the interconnect,
    #: caches and branch predictors unprimed, queues doubled up
    reroute_penalty: float = 1.5
    throttle_mhz: float = 600.0
    stall_us: float = 40_000.0
    degradation_path: str = "c1"
    degradation_factor: float = 6.0
    corruption_probability: float = 0.15
    controller: ControllerConfig = ControllerConfig()

    def __post_init__(self) -> None:
        if self.scenario not in CHAOS_SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {CHAOS_SCENARIOS}"
            )
        if self.window_batches < 1:
            raise ConfigurationError("window must hold at least one batch")
        if self.warmup_batches >= self.batches:
            raise ConfigurationError("warmup must leave measurable batches")
        if not 0 < self.fault_batch < self.batches:
            raise ConfigurationError(
                "fault_batch must fall inside the session"
            )
        if self.latency_margin <= 1.0:
            raise ConfigurationError("latency margin must exceed 1")


@dataclass(frozen=True)
class ChaosComparison:
    """Fault-free baseline vs faulted static vs faulted adaptive."""

    spec: ChaosSpec
    victim_core: int
    l_set_us_per_byte: float
    fault_plan: FaultPlan
    baseline: SessionResult
    static: SessionResult
    adaptive: SessionResult
    baseline_energy_uj_per_byte: float
    static_energy_uj_per_byte: float
    adaptive_energy_uj_per_byte: float
    static_violations: int
    adaptive_violations: int
    #: violations among steady-state batches only (window-boundary
    #: batches pay the full pipeline traversal in every arm alike)
    static_steady_violations: int
    adaptive_steady_violations: int
    #: µs from the first fault firing to sustained recovery (the first
    #: steady-state completion with a violation-free steady suffix);
    #: None: no fault fired, or the arm never recovered
    static_recovery_us: Optional[float]
    adaptive_recovery_us: Optional[float]
    controller_events: Tuple
    failover_events: Tuple
    #: residual-attribution health report of the adaptive arm (None
    #: when the session ran with ``telemetry=False``)
    health: Optional[SessionHealth] = None

    def energy_overhead(self, arm_energy: float) -> float:
        """Relative energy cost of surviving the fault vs fault-free."""
        if self.baseline_energy_uj_per_byte == 0.0:
            return 0.0
        return arm_energy / self.baseline_energy_uj_per_byte - 1.0

    @property
    def static_energy_overhead(self) -> float:
        return self.energy_overhead(self.static_energy_uj_per_byte)

    @property
    def adaptive_energy_overhead(self) -> float:
        return self.energy_overhead(self.adaptive_energy_uj_per_byte)


def build_fault_plan(spec: ChaosSpec, victim_core: int) -> FaultPlan:
    """The scenario's fault events, aimed at ``victim_core``."""
    events: List = []
    if spec.scenario in ("core-failure", "core-failure+corruption"):
        events.append(CoreFailure(
            core_id=victim_core,
            at_batch=spec.fault_batch,
            reroute_penalty=spec.reroute_penalty,
        ))
    if spec.scenario == "throttle":
        events.append(DvfsThrottle(
            core_id=victim_core,
            at_batch=spec.fault_batch,
            frequency_mhz=spec.throttle_mhz,
        ))
    if spec.scenario == "stall":
        events.append(CoreStall(
            core_id=victim_core,
            at_batch=spec.fault_batch,
            stall_us=spec.stall_us,
        ))
    if spec.scenario == "interconnect":
        events.append(InterconnectDegradation(
            at_batch=spec.fault_batch,
            path=spec.degradation_path,
            factor=spec.degradation_factor,
        ))
    if spec.scenario in ("corruption", "core-failure+corruption"):
        events.append(BatchCorruption(
            probability=spec.corruption_probability,
            from_batch=spec.fault_batch,
        ))
    return FaultPlan(events=tuple(events))


def _pick_victim(plan, board) -> int:
    """The static plan's most load-bearing core: the first big core it
    uses (the asymmetry-aware plans lean on big cores for the heavy
    stages), else the first core used at all."""
    used = plan.cores_used()
    for core_id in used:
        if board.core_by_id[core_id].is_big:
            return core_id
    return used[0]


def _recovery_us(
    result: SessionResult, window_batches: int
) -> Optional[float]:
    """µs between the first fault firing and sustained recovery: the
    completion of the first steady-state batch after which no later
    steady-state batch violates the constraint (window-boundary batches
    pay the full pipeline traversal in every arm alike, so they neither
    count as violations here nor earn recovery credit). ``None`` means
    no fault fired, or the arm never reaches a clean suffix — it limps
    to the end of the session still violating."""
    if not result.fault_events:
        return None
    fault_ts = min(event.ts_us for event in result.fault_events)
    last_bad = max(
        (
            b.batch_index
            for b in result.batches
            if b.violated and b.batch_index % window_batches != 0
        ),
        default=-1,
    )
    for batch in result.batches:
        completed = result.completion_ts_us[batch.batch_index]
        if completed <= fault_ts or batch.batch_index <= last_bad:
            continue
        if batch.batch_index % window_batches == 0:
            continue
        return completed - fault_ts
    return None


def run_chaos_session(
    harness=None,
    spec: ChaosSpec = ChaosSpec(),
    trace=None,
    telemetry: bool = True,
) -> ChaosComparison:
    """Run one fault scenario and compare the three arms.

    ``trace`` (a :class:`~repro.obs.trace.TraceRecorder`) is attached to
    the *adaptive faulted* session only — the run whose fault, failover
    and retry events are worth inspecting. ``telemetry`` (default on:
    chaos sessions exist to be diagnosed) runs the adaptive arm with a
    residual-ledger collector, which both fills
    :attr:`ChaosComparison.health` and arms the controller's
    ``reason="diagnosis"`` replan path — the only path that can see the
    signal-free interconnect-degradation and batch-corruption faults.
    """
    if harness is None:
        from repro.bench.harness import default_harness

        harness = default_harness()
    from repro.bench.harness import WorkloadSpec

    if spec.batch_bytes is not None:
        workload = WorkloadSpec.of(
            spec.codec, spec.dataset, batch_size=spec.batch_bytes
        )
    else:
        workload = WorkloadSpec.of(spec.codec, spec.dataset)
    context = harness.context(workload)
    profile = harness.profile(workload)
    batch_bytes = workload.batch_size

    # The static plan is scheduled under the paper's constraint; the
    # session's own L_set is that plan's modeled latency plus margin.
    static_model = context.cost_model(context.fine_graph)
    static_plan = (
        Scheduler(static_model).schedule(best_effort=True).estimate.plan
    )
    estimate = static_model.evaluate(static_plan)
    l_set = estimate.latency_us_per_byte * spec.latency_margin
    victim = _pick_victim(static_plan, harness.board)
    fault_plan = build_fault_plan(spec, victim)

    # Steady (drift-free) per-batch stream: the profiled batches cycled.
    per_batch = profile.per_batch_step_costs
    stream = [
        per_batch[index % len(per_batch)] for index in range(spec.batches)
    ]

    def _config(with_faults: bool) -> ExecutionConfig:
        return ExecutionConfig(
            latency_constraint_us_per_byte=l_set,
            repetitions=1,
            batches_per_repetition=spec.batches,
            warmup_batches=spec.warmup_batches,
            seed=harness.seed,
            fault_plan=fault_plan if with_faults else None,
        )

    def _run(config, controller, recorder=None, collector=None) -> SessionResult:
        return PipelineExecutor(
            harness.board, config, trace=recorder, telemetry=collector
        ).run_session(
            static_plan,
            stream,
            batch_bytes,
            window_batches=spec.window_batches,
            controller=controller,
        )

    baseline_result = _run(_config(False), None)
    static_result = _run(_config(True), None)

    # The controller's model carries the *session's* constraint, not the
    # paper default the static plan was scheduled under — a failover
    # replan must be judged against the L_set the session is actually
    # held to (on boards where l_set < the paper constraint, a plan
    # feasible at the paper constraint can still violate every batch).
    adaptive_context = harness.context(
        dataclasses.replace(workload, latency_constraint=l_set)
    )
    adaptive_model = adaptive_context.cost_model(adaptive_context.fine_graph)
    controller = SessionController(
        adaptive_model,
        stream,
        batch_bytes,
        config=spec.controller,
        plan=static_plan,
    )
    collector = TelemetryCollector() if telemetry else None
    adaptive_result = _run(
        _config(True), controller, recorder=trace, collector=collector
    )
    health = None
    if collector is not None:
        health = finalize_session_health(
            controller, collector, adaptive_result, batch_bytes,
            label=f"chaos:{spec.scenario}",
        )

    def _summarize(result: SessionResult) -> Tuple[float, int, int]:
        measured = result.measured(spec.warmup_batches)
        energy = sum(b.energy_uj_per_byte for b in measured) / len(measured)
        violations = sum(1 for b in measured if b.violated)
        steady = sum(
            1
            for b in measured
            if b.violated and b.batch_index % spec.window_batches != 0
        )
        return energy, violations, steady

    baseline_energy, _, _ = _summarize(baseline_result)
    static_energy, static_violations, static_steady = _summarize(
        static_result
    )
    adaptive_energy, adaptive_violations, adaptive_steady = _summarize(
        adaptive_result
    )
    return ChaosComparison(
        spec=spec,
        victim_core=victim,
        l_set_us_per_byte=l_set,
        fault_plan=fault_plan,
        baseline=baseline_result,
        static=static_result,
        adaptive=adaptive_result,
        baseline_energy_uj_per_byte=baseline_energy,
        static_energy_uj_per_byte=static_energy,
        adaptive_energy_uj_per_byte=adaptive_energy,
        static_violations=static_violations,
        adaptive_violations=adaptive_violations,
        static_steady_violations=static_steady,
        adaptive_steady_violations=adaptive_steady,
        static_recovery_us=_recovery_us(static_result, spec.window_batches),
        adaptive_recovery_us=_recovery_us(
            adaptive_result, spec.window_batches
        ),
        controller_events=tuple(controller.events),
        failover_events=tuple(controller.failovers),
        health=health,
    )
