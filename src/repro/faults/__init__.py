"""Fault injection: declarative fault plans and the chaos harness.

:mod:`repro.faults.model` is the dependency-light core (imported by the
runtime executor): typed fault events, seeded schedules and the
pre-drawn corruption outcomes. :mod:`repro.faults.chaos` is the
downstream harness gluing fault plans to windowed sessions and the
:class:`~repro.control.controller.SessionController` failover path — it
imports :mod:`repro.control` and :mod:`repro.bench`, so the runtime
never imports it back.

Import note: ``from repro.faults import chaos`` lazily, or import the
names re-exported here — pulling chaos symbols at package import time
would cycle through :mod:`repro.runtime`.
"""

from repro.faults.model import (
    BatchCorruption,
    BoardCrash,
    BoardEvent,
    BoardReboot,
    BoardThrottle,
    CoreFailure,
    CoreStall,
    CorruptedBatch,
    DvfsThrottle,
    FaultEvent,
    FaultPlan,
    FiredFault,
    InterconnectDegradation,
    corruption_schedule,
)

__all__ = [
    "BatchCorruption",
    "BoardCrash",
    "BoardEvent",
    "BoardReboot",
    "BoardThrottle",
    "CoreFailure",
    "CoreStall",
    "CorruptedBatch",
    "DvfsThrottle",
    "FaultEvent",
    "FaultPlan",
    "FiredFault",
    "InterconnectDegradation",
    "corruption_schedule",
]
