"""Fleet chaos arm: named board-level fault scenarios.

The single-board chaos harness (:mod:`repro.faults.chaos`) aims typed
core/stream faults at one session; this module is its fleet analogue —
it builds :class:`~repro.faults.model.FaultPlan` objects out of the
board-level events (:class:`~repro.faults.model.BoardCrash`,
:class:`~repro.faults.model.BoardReboot`,
:class:`~repro.faults.model.BoardThrottle`) that the fleet gateway
(:mod:`repro.fleet.gateway`) consumes window by window. The scenario
comparison itself (static vs shedding vs shedding+failover arms) lives
in :mod:`repro.fleet.scenario`, which imports this module — never the
other way round, so the fault layer stays dependency-light.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.model import (
    BoardCrash,
    BoardThrottle,
    FaultPlan,
)

__all__ = [
    "FLEET_SCENARIOS",
    "build_fleet_fault_plan",
]

#: named board-level fault scenarios ``cstream serve`` and the fleet
#: bench sweep understand
FLEET_SCENARIOS = (
    "none",
    "board-crash",
    "board-crash-reboot",
    "board-throttle",
)


def build_fleet_fault_plan(
    scenario: str,
    board_index: int = 0,
    at_window: int = 3,
    reboot_after_windows: int = 4,
    throttle_mhz: float = 408.0,
    seed: int = 0,
) -> FaultPlan:
    """The scenario's board-level fault events, aimed at ``board_index``.

    ``board_index`` is a position in the fleet's board list; the fleet
    scenario glue aims it at the most-loaded board by default, the same
    way single-board chaos targets the static plan's most load-bearing
    core.
    """
    if scenario not in FLEET_SCENARIOS:
        raise ConfigurationError(
            f"unknown fleet scenario {scenario!r}; "
            f"expected one of {FLEET_SCENARIOS}"
        )
    if scenario == "none":
        return FaultPlan(seed=seed)
    if scenario == "board-crash":
        return FaultPlan(
            events=(
                BoardCrash(board_index=board_index, at_window=at_window),
            ),
            seed=seed,
        )
    if scenario == "board-crash-reboot":
        return FaultPlan(
            events=(
                BoardCrash(
                    board_index=board_index,
                    at_window=at_window,
                    reboot_after_windows=reboot_after_windows,
                ),
            ),
            seed=seed,
        )
    return FaultPlan(
        events=(
            BoardThrottle(
                board_index=board_index,
                at_window=at_window,
                frequency_mhz=throttle_mhz,
            ),
        ),
        seed=seed,
    )
