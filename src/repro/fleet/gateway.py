"""The fleet gateway: one deterministic loop over serving windows.

``cstream serve`` builds a :class:`Gateway` and calls :meth:`Gateway.run`.
Each window proceeds in a fixed phase order — board fault events,
breaker gating, admission (new arrivals + backoff-due retries), health
pings and window RPCs, load shedding, cross-board failover, health
recording — and every iteration is over sorted ids, every random draw
keyed by ``(seed, stream, entity, window)``, so the same seed produces
a byte-identical :class:`~repro.obs.health.FleetHealth` report
regardless of host, rerun, or worker count.

The simulation runs at the cost-model level: a running tenant's
"measured" window latency is its controller's current modeled latency
(throttle-aware once the controller has adapted), inflated by board
congestion (utilization of the hottest core above 1.0), an explicit
throttle factor until the tenant's controller has seen the DVFS signal,
and a few percent of seeded noise. Each placed tenant embeds a full
:class:`~repro.control.controller.SessionController` behind an
:class:`~repro.control.heartbeat.ExternalHeartbeat`, so on-board
adaptation (throttle replans, migration gating) is the real PR 4–5
machinery, not a re-implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.control.controller import ControllerConfig, SessionController
from repro.control.heartbeat import ExternalHeartbeat
from repro.errors import ConfigurationError
from repro.faults.model import (
    BoardCrash,
    BoardReboot,
    BoardThrottle,
    FaultPlan,
)
from repro.fleet.admission import AdmissionConfig, evaluate_admission
from repro.fleet.backoff import BackoffPolicy
from repro.fleet.breaker import BreakerConfig, CircuitBreaker
from repro.fleet.placement import FleetScheduler, Placement
from repro.fleet.registry import BoardHandle
from repro.fleet.tenants import TenantWorkload
from repro.numerics import ordered_sum
from repro.obs.health import (
    FleetBoardHealth,
    FleetEvent,
    FleetHealth,
    FleetTenantHealth,
    FleetWindowHealth,
)

__all__ = ["GatewayConfig", "Gateway"]

#: RNG stream tag for measurement noise (backoff uses its own tag)
_NOISE_STREAM = 13


@dataclass(frozen=True)
class GatewayConfig:
    """Shape and policies of one serving run."""

    windows: int = 12
    #: the fleet's only clock: one serving window, µs
    window_period_us: float = 400_000.0
    #: relative amplitude of seeded measurement noise
    noise: float = 0.02
    #: arm flags: load shedding / cross-board failover enabled
    shedding: bool = True
    failover: bool = True
    admission: AdmissionConfig = AdmissionConfig()
    breaker: BreakerConfig = BreakerConfig()
    #: jitter/backoff template; the gateway re-seeds it with its own seed
    backoff: BackoffPolicy = BackoffPolicy()
    #: per-window RPC attempts against a board before it counts failed
    rpc_attempts: int = 3
    #: auto energy budget: per-board allowance when the admission config
    #: leaves the budget unset, µJ per window
    energy_budget_uj_per_board: float = 20_000.0
    controller: ControllerConfig = ControllerConfig()

    def __post_init__(self) -> None:
        if self.windows < 1:
            raise ConfigurationError("need at least one window")
        if self.window_period_us <= 0.0:
            raise ConfigurationError("window period must be positive")
        if not 0.0 <= self.noise < 0.2:
            raise ConfigurationError("noise must be in [0, 0.2)")
        if self.rpc_attempts < 1:
            raise ConfigurationError("rpc_attempts must be >= 1")
        if self.energy_budget_uj_per_board <= 0.0:
            raise ConfigurationError("energy allowance must be positive")


@dataclass
class _BoardState:
    handle: BoardHandle
    alive: bool = True
    throttled_mhz: Optional[float] = None
    #: window the throttle lifts in (None = sustained / not throttled)
    throttle_until: Optional[int] = None
    #: window RPC failures recorded this window (reset each window)
    rpc_failures: int = 0


@dataclass
class _TenantState:
    workload: TenantWorkload
    #: "pending", "queued", "running", "stranded", "rejected"
    state: str = "pending"
    board_index: Optional[int] = None
    placement: Optional[Placement] = None
    controller: Optional[SessionController] = None
    heartbeat: Optional[ExternalHeartbeat] = None
    #: admission attempts consumed (initial attempt included)
    attempts: int = 0
    #: earliest window the next admission attempt may run in
    next_attempt_window: float = 0.0
    #: the tenant was admitted at least once (a later queued/stranded
    #: window is then a service interruption and counts violated)
    ever_admitted: bool = False
    #: tenant's controller has been shown the current board throttle
    throttle_seen: bool = False
    #: plan in force when the tenant last ran — the failover warm start
    last_plan: Optional[object] = None
    # per-window scratch, rewritten every window
    measured_us_per_byte: float = 0.0
    modeled_us_per_byte: float = 0.0
    energy_uj: float = 0.0
    violated: bool = False

    @property
    def tenant_id(self) -> int:
        return self.workload.tenant_id

    @property
    def priority(self) -> int:
        return self.workload.spec.priority


class Gateway:
    """Runs the serving loop and assembles the fleet health report."""

    def __init__(
        self,
        boards: Tuple[BoardHandle, ...],
        workloads: Tuple[TenantWorkload, ...],
        fault_plan: Optional[FaultPlan] = None,
        config: GatewayConfig = GatewayConfig(),
        seed: int = 0,
        label: str = "fleet",
    ) -> None:
        if not boards:
            raise ConfigurationError("fleet has no boards")
        if not workloads:
            raise ConfigurationError("no tenants to serve")
        self.config = config
        self.seed = seed
        self.label = label
        self.scheduler = FleetScheduler(workloads, boards, seed=seed)
        self.backoff = replace(config.backoff, seed=seed)
        self.boards = {
            b.board_index: _BoardState(handle=b) for b in boards
        }
        self.breakers = {
            b.board_index: CircuitBreaker(b.board_index, config.breaker)
            for b in boards
        }
        self.tenants = {
            w.tenant_id: _TenantState(
                workload=w,
                next_attempt_window=float(w.spec.arrival_window),
            )
            for w in workloads
        }
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.events: List[FleetEvent] = []
        self._windows: List[FleetWindowHealth] = []
        self._consumed_transitions = {b.board_index: 0 for b in boards}
        budget = config.admission.energy_budget_uj_per_window
        self.energy_budget_uj_per_window = (
            budget
            if budget is not None
            else config.energy_budget_uj_per_board * len(boards)
        )

    @property
    def arm(self) -> str:
        if self.config.failover:
            return "shed-failover"
        if self.config.shedding:
            return "shed"
        return "static"

    # -- bookkeeping helpers -------------------------------------------------

    def _emit(
        self,
        window: int,
        kind: str,
        tenant_id: Optional[int],
        board_index: Optional[int],
        detail: str,
    ) -> None:
        self.events.append(
            FleetEvent(
                sequence=len(self.events),
                window_index=window,
                kind=kind,
                tenant_id=tenant_id,
                board_index=board_index,
                detail=detail,
            )
        )

    def _sync_breaker_events(self, window: int) -> None:
        """Mirror any new breaker transitions into the event log."""
        for board_index in sorted(self.breakers):
            breaker = self.breakers[board_index]
            consumed = self._consumed_transitions[board_index]
            for transition in breaker.transitions[consumed:]:
                self._emit(
                    window,
                    "breaker",
                    None,
                    board_index,
                    f"{transition.from_state}->{transition.to_state} "
                    f"({transition.reason})",
                )
            self._consumed_transitions[board_index] = len(breaker.transitions)

    def _running_on(self, board_index: int) -> List[_TenantState]:
        return [
            self.tenants[tid]
            for tid in sorted(self.tenants)
            if self.tenants[tid].state == "running"
            and self.tenants[tid].board_index == board_index
        ]

    def _board_busy_us(self, board_index: int) -> Dict[int, float]:
        busy: Dict[int, float] = {}
        for tenant in self._running_on(board_index):
            for core, amount in tenant.placement.busy_us_by_core:
                busy[core] = busy.get(core, 0.0) + amount
        return busy

    def _max_core_load(self, board_index: int) -> float:
        busy = self._board_busy_us(board_index)
        return max(
            (amount / self.config.window_period_us for amount in busy.values()),
            default=0.0,
        )

    def _throttle_scale(self, board: _BoardState) -> float:
        """Worst-core slowdown of a sustained DVFS cap on this board."""
        if board.throttled_mhz is None:
            return 1.0
        return max(
            core.max_frequency_mhz / min(
                board.throttled_mhz, core.max_frequency_mhz
            )
            for core in board.handle.spec.cores
        )

    def _running_energy_uj_per_window(self) -> float:
        terms = []
        for tenant_id in sorted(self.tenants):
            tenant = self.tenants[tenant_id]
            if tenant.state == "running":
                terms.append(
                    tenant.placement.estimate.energy_uj_per_byte
                    * tenant.workload.spec.window_bytes
                )
        return ordered_sum(terms)

    def _noise(self, tenant_id: int, window: int) -> float:
        rng = np.random.default_rng(
            [self.seed, _NOISE_STREAM, tenant_id, window]
        )
        return self.config.noise * (2.0 * rng.random() - 1.0)

    # -- placement lifecycle -------------------------------------------------

    def _install(
        self, tenant: _TenantState, placement: Placement, window: int
    ) -> None:
        """Mount a controller + heartbeat over a fresh placement."""
        board = self.boards[placement.board_index]
        model = self.scheduler.model(tenant.tenant_id, board.handle)
        batches = tenant.workload.spec.batches_per_window
        stream = [tenant.workload.profile.mean_step_costs] * (
            (self.config.windows + 1) * batches
        )
        controller = SessionController(
            model,
            stream,
            tenant.workload.spec.batch_bytes,
            config=self.config.controller,
            plan=placement.plan,
        )
        tenant.placement = placement
        tenant.board_index = placement.board_index
        tenant.controller = controller
        tenant.heartbeat = ExternalHeartbeat(controller)
        tenant.state = "running"
        tenant.ever_admitted = True
        tenant.throttle_seen = False

    def _evict(self, tenant: _TenantState, state: str) -> None:
        tenant.state = state
        if state != "stranded":
            tenant.board_index = None
        if tenant.controller is not None:
            # the adopted plan, post any on-board replans — what a
            # cross-board failover warm-starts from
            tenant.last_plan = tenant.controller.plan
        elif tenant.placement is not None:
            tenant.last_plan = tenant.placement.plan
        tenant.placement = None
        tenant.controller = None
        tenant.heartbeat = None

    def _queue_retry(self, tenant: _TenantState, window: int) -> float:
        """Schedule the tenant's next admission attempt; return delay."""
        delay = self.backoff.delay_windows(
            (tenant.tenant_id,), tenant.attempts
        )
        tenant.attempts += 1
        tenant.next_attempt_window = window + delay
        return delay

    # -- window phases -------------------------------------------------------

    def _fire_board_events(self, window: int) -> None:
        schedule = self.fault_plan.board_schedule()
        for event in schedule.get(window, ()):
            board = self.boards[event.board_index]
            if isinstance(event, BoardCrash):
                board.alive = False
                board.throttled_mhz = None
                board.throttle_until = None
                self._emit(
                    window, "board-crash", None, event.board_index,
                    f"{board.handle.name} down",
                )
            elif isinstance(event, BoardReboot):
                board.alive = True
                self._emit(
                    window, "board-reboot", None, event.board_index,
                    f"{board.handle.name} up",
                )
            elif isinstance(event, BoardThrottle):
                board.throttled_mhz = event.frequency_mhz
                board.throttle_until = (
                    window + event.duration_windows
                    if event.duration_windows is not None
                    else None
                )
                for tenant in self._running_on(event.board_index):
                    tenant.throttle_seen = False
                self._emit(
                    window, "board-throttle", None, event.board_index,
                    f"{board.handle.name} capped at "
                    f"{event.frequency_mhz:g} MHz",
                )
        # lift expired throttles
        for board_index in sorted(self.boards):
            board = self.boards[board_index]
            if (
                board.throttle_until is not None
                and window >= board.throttle_until
            ):
                board.throttled_mhz = None
                board.throttle_until = None
                self._emit(
                    window, "board-throttle", None, board_index,
                    f"{board.handle.name} back to nominal frequency",
                )

    def _admission_phase(
        self, window: int, traffic_ok: Dict[int, bool]
    ) -> None:
        due = [
            self.tenants[tid]
            for tid in sorted(self.tenants)
            if self.tenants[tid].state in ("pending", "queued")
            and self.tenants[tid].next_attempt_window <= window
        ]
        # premium tenants first; ties in id order
        due.sort(key=lambda t: (-t.priority, t.tenant_id))
        eligible = tuple(
            self.boards[b].handle
            for b in sorted(self.boards)
            if self.boards[b].alive and traffic_ok[b]
        )
        for tenant in due:
            if tenant.attempts > 0:
                self._emit(
                    window, "retry", tenant.tenant_id, None,
                    f"admission attempt {tenant.attempts + 1}",
                )
            busy = {b: self._board_busy_us(b) for b in sorted(self.boards)}
            scales = {
                b: self._throttle_scale(self.boards[b])
                for b in sorted(self.boards)
            }
            decision = evaluate_admission(
                tenant.workload,
                self.scheduler,
                eligible,
                busy,
                scales,
                self._running_energy_uj_per_window(),
                self.energy_budget_uj_per_window,
                window,
                self.config.window_period_us,
                self.config.admission,
            )
            if decision.admitted:
                board = self.boards[decision.board_index]
                placement = self.scheduler.build_placement(
                    tenant.tenant_id, board.handle
                )
                self._install(tenant, placement, window)
                self._emit(
                    window, "admit", tenant.tenant_id, decision.board_index,
                    f"modeled {decision.modeled_latency_us_per_byte:.4f} "
                    f"<= l_set {decision.l_set_us_per_byte:.4f} us/B, "
                    f"load {decision.projected_max_core_load:.3f}",
                )
            elif tenant.attempts + 1 >= self.config.admission.max_attempts:
                tenant.attempts += 1
                tenant.state = "rejected"
                self._emit(
                    window, "reject", tenant.tenant_id, None,
                    f"final after {tenant.attempts} attempts: "
                    f"{decision.reason}",
                )
            else:
                delay = self._queue_retry(tenant, window)
                tenant.state = "queued"
                self._emit(
                    window, "queue", tenant.tenant_id, None,
                    f"{decision.reason}; retry in {delay:.2f} windows",
                )

    def _rpc_phase(self, window: int, traffic_ok: Dict[int, bool]) -> None:
        for board_index in sorted(self.boards):
            board = self.boards[board_index]
            board.rpc_failures = 0
            breaker = self.breakers[board_index]
            if not traffic_ok[board_index]:
                continue
            # health ping drives the breaker, independent of tenants
            if board.alive:
                breaker.record_success(window)
            else:
                board.rpc_failures += 1
                breaker.record_failure(window)
                self._emit(
                    window, "rpc-failure", None, board_index,
                    f"health ping failed after {self.config.rpc_attempts} "
                    f"attempts",
                )
            throttle_scale = self._throttle_scale(board)
            max_load = self._max_core_load(board_index)
            slowdown = max(1.0, max_load)
            for tenant in self._running_on(board_index):
                if not board.alive:
                    board.rpc_failures += 1
                    self._emit(
                        window, "rpc-failure", tenant.tenant_id, board_index,
                        f"window RPC failed after "
                        f"{self.config.rpc_attempts} attempts",
                    )
                    tenant.measured_us_per_byte = 0.0
                    tenant.modeled_us_per_byte = 0.0
                    tenant.energy_uj = 0.0
                    tenant.violated = True
                    if self.config.failover:
                        # hold for the breaker-open failover sweep
                        self._evict(tenant, "stranded")
                    elif self.config.shedding:
                        delay = self._queue_retry(tenant, window)
                        self._evict(tenant, "queued")
                        self._emit(
                            window, "shed", tenant.tenant_id, board_index,
                            f"board dead; requeued, retry in "
                            f"{delay:.2f} windows",
                        )
                    else:
                        self._evict(tenant, "stranded")
                    continue
                estimate = tenant.controller.model.evaluate(
                    tenant.controller.plan
                )
                modeled = estimate.latency_us_per_byte
                # until the tenant's controller has seen the DVFS signal
                # its model prices nominal frequencies; the physical cap
                # applies regardless
                factor = 1.0 if tenant.throttle_seen else throttle_scale
                noise = self._noise(tenant.tenant_id, window)
                measured = modeled * factor * slowdown * (1.0 + noise)
                tenant.measured_us_per_byte = measured
                tenant.modeled_us_per_byte = modeled
                tenant.energy_uj = (
                    estimate.energy_uj_per_byte
                    * tenant.workload.spec.window_bytes
                )
                tenant.violated = (
                    measured > tenant.workload.l_set_us_per_byte
                )
                throttle_signal = ()
                if board.throttled_mhz is not None:
                    throttle_signal = tuple(
                        (core_id, board.throttled_mhz)
                        for core_id in board.handle.spec.core_ids
                    )
                batches = tenant.workload.spec.batches_per_window
                tenant.heartbeat.observe(
                    window,
                    [measured] * batches,
                    now_us=(window + 1) * self.config.window_period_us,
                    throttled_mhz=throttle_signal,
                )
                if throttle_signal:
                    tenant.throttle_seen = True

    def _shedding_phase(self, window: int, traffic_ok: Dict[int, bool]) -> None:
        if not self.config.shedding:
            return
        headroom = self.config.admission.headroom
        for board_index in sorted(self.boards):
            board = self.boards[board_index]
            if not board.alive or not traffic_ok[board_index]:
                continue
            # first, tenants this board can no longer serve at all
            # (sustained throttle pushed even the modeled latency past
            # their SLO) — shedding others would not save them
            scale = self._throttle_scale(board)
            for tenant in self._running_on(board_index):
                modeled = tenant.modeled_us_per_byte
                seen_scale = 1.0 if tenant.throttle_seen else scale
                floor = modeled * max(seen_scale, 1.0)
                if (
                    tenant.violated
                    and floor > tenant.workload.l_set_us_per_byte
                ):
                    delay = self._queue_retry(tenant, window)
                    self._evict(tenant, "queued")
                    self._emit(
                        window, "shed", tenant.tenant_id, board_index,
                        f"unservable here (floor {floor:.4f} > l_set "
                        f"{tenant.workload.l_set_us_per_byte:.4f} us/B); "
                        f"retry in {delay:.2f} windows",
                    )
            # then relieve plain overload, lowest priority first
            while True:
                running = self._running_on(board_index)
                if len(running) <= 1:
                    break
                if self._max_core_load(board_index) <= headroom:
                    break
                victim = min(
                    running, key=lambda t: (t.priority, t.tenant_id)
                )
                delay = self._queue_retry(victim, window)
                self._evict(victim, "queued")
                self._emit(
                    window, "shed", victim.tenant_id, board_index,
                    f"overload (headroom {headroom:.2f}); retry in "
                    f"{delay:.2f} windows",
                )

    def _failover_phase(
        self, window: int, traffic_ok: Dict[int, bool]
    ) -> None:
        if not self.config.failover:
            return
        # boards whose breaker opened by this window with stranded tenants
        for board_index in sorted(self.boards):
            breaker = self.breakers[board_index]
            if breaker.state != "open":
                continue
            victims = [
                self.tenants[tid]
                for tid in sorted(self.tenants)
                if self.tenants[tid].state == "stranded"
                and self.tenants[tid].board_index == board_index
            ]
            if not victims:
                continue
            victims.sort(key=lambda t: (-t.priority, t.tenant_id))
            source = self.boards[board_index].handle
            eligible = tuple(
                self.boards[b].handle
                for b in sorted(self.boards)
                if b != board_index
                and self.boards[b].alive
                and traffic_ok[b]
            )
            for tenant in victims:
                incumbent = tenant.last_plan
                busy = {b: self._board_busy_us(b) for b in sorted(self.boards)}
                scales = {
                    b: self._throttle_scale(self.boards[b])
                    for b in sorted(self.boards)
                }
                decision = evaluate_admission(
                    tenant.workload,
                    self.scheduler,
                    eligible,
                    busy,
                    scales,
                    self._running_energy_uj_per_window(),
                    self.energy_budget_uj_per_window,
                    window,
                    self.config.window_period_us,
                    self.config.admission,
                )
                if not decision.admitted:
                    delay = self._queue_retry(tenant, window)
                    self._evict(tenant, "queued")
                    self._emit(
                        window, "queue", tenant.tenant_id, None,
                        f"failover blocked ({decision.reason}); retry in "
                        f"{delay:.2f} windows",
                    )
                    continue
                destination = self.boards[decision.board_index].handle
                placement, cost = self.scheduler.failover_placement(
                    tenant.tenant_id,
                    source,
                    incumbent if incumbent is not None
                    else self.scheduler.plan_estimate(
                        tenant.tenant_id, source
                    ).plan,
                    destination,
                )
                self._install(tenant, placement, window)
                self._emit(
                    window, "failover", tenant.tenant_id,
                    decision.board_index,
                    f"{source.name} -> {destination.name}; migration "
                    f"pause {cost.pause_us:.1f} us, "
                    f"{cost.moved_replicas} replicas",
                )

    def _record_window(self, window: int) -> None:
        board_records = []
        for board_index in sorted(self.boards):
            board = self.boards[board_index]
            breaker = self.breakers[board_index]
            board_records.append(
                FleetBoardHealth(
                    board_index=board_index,
                    name=board.handle.name,
                    kind=board.handle.kind,
                    alive=board.alive,
                    breaker_state=breaker.state,
                    consecutive_failures=breaker.consecutive_failures,
                    throttled_mhz=board.throttled_mhz,
                    max_core_load=self._max_core_load(board_index),
                    tenants_running=len(self._running_on(board_index)),
                    rpc_failures=board.rpc_failures,
                )
            )
        tenant_records = []
        violations = 0
        energy_terms = []
        for tenant_id in sorted(self.tenants):
            tenant = self.tenants[tenant_id]
            if tenant.state == "running":
                violated = tenant.violated
            elif tenant.state in ("stranded", "queued"):
                # an interrupted stream violates its SLO every window;
                # a never-admitted tenant has no SLO yet
                violated = tenant.ever_admitted
            else:
                violated = False
            if violated:
                violations += 1
            if tenant.state == "running":
                energy_terms.append(tenant.energy_uj)
            tenant_records.append(
                FleetTenantHealth(
                    tenant_id=tenant_id,
                    name=tenant.workload.spec.name,
                    priority=tenant.priority,
                    state=tenant.state,
                    board_index=tenant.board_index,
                    l_set_us_per_byte=tenant.workload.l_set_us_per_byte,
                    modeled_latency_us_per_byte=(
                        tenant.modeled_us_per_byte
                        if tenant.state == "running" else 0.0
                    ),
                    measured_latency_us_per_byte=(
                        tenant.measured_us_per_byte
                        if tenant.state == "running" else 0.0
                    ),
                    modeled_energy_uj_per_byte=(
                        tenant.placement.estimate.energy_uj_per_byte
                        if tenant.state == "running" else 0.0
                    ),
                    violated=violated,
                )
            )
        self._windows.append(
            FleetWindowHealth(
                window_index=window,
                boards=tuple(board_records),
                tenants=tuple(tenant_records),
                violations=violations,
                energy_uj=ordered_sum(energy_terms),
            )
        )

    # -- the loop ------------------------------------------------------------

    def run(self) -> FleetHealth:
        for window in range(self.config.windows):
            self._fire_board_events(window)
            traffic_ok = {
                b: self.breakers[b].allows_traffic(window)
                for b in sorted(self.boards)
            }
            self._admission_phase(window, traffic_ok)
            self._rpc_phase(window, traffic_ok)
            self._shedding_phase(window, traffic_ok)
            self._failover_phase(window, traffic_ok)
            self._sync_breaker_events(window)
            self._record_window(window)
        return FleetHealth(
            label=self.label,
            arm=self.arm,
            seed=self.seed,
            board_count=len(self.boards),
            tenant_count=len(self.tenants),
            energy_budget_uj_per_window=self.energy_budget_uj_per_window,
            windows=tuple(self._windows),
            events=tuple(self.events),
        )
