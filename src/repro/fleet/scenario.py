"""Scenario arms: static vs shedding vs shedding+failover.

The fleet analogue of the single-board chaos comparison
(:mod:`repro.faults.chaos`): build one tenant catalogue, aim one
board-level fault plan at the fleet, and run the same serving window
sequence under three gateway configurations —

* ``static`` — admission control only; a dead board's tenants are
  stranded and violate their SLO for the rest of the run;
* ``shed`` — load shedding and backpressure: victims are requeued with
  seeded-jitter backoff and re-admitted wherever capacity exists;
* ``shed-failover`` — plus the circuit breaker and cross-board
  failover: victims are re-placed onto surviving boards as soon as the
  dead board's breaker opens.

All three arms share the catalogue, the SLOs and the fault plan; every
difference in the summaries is the robustness machinery itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.fleet import FLEET_SCENARIOS, build_fleet_fault_plan
from repro.fleet.gateway import Gateway, GatewayConfig
from repro.fleet.registry import build_fleet
from repro.fleet.tenants import build_tenant_catalog, build_tenant_workloads
from repro.numerics import ordered_sum
from repro.obs.health import FleetHealth

__all__ = [
    "FLEET_ARMS",
    "ArmSummary",
    "FleetComparison",
    "FleetScenarioSpec",
    "arm_config",
    "run_fleet_arm",
    "run_fleet_scenario",
]

FLEET_ARMS = ("static", "shed", "shed-failover")


@dataclass(frozen=True)
class FleetScenarioSpec:
    """One fleet chaos experiment."""

    boards: int = 3
    tenants: int = 6
    windows: int = 12
    #: a :data:`repro.faults.fleet.FLEET_SCENARIOS` name
    scenario: str = "board-crash"
    #: board the fault hits — board 0 hosts the first admissions (ties
    #: in placement go to the lower index), so it always has victims
    fault_board: int = 0
    at_window: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scenario not in FLEET_SCENARIOS:
            raise ConfigurationError(
                f"unknown fleet scenario {self.scenario!r}; "
                f"expected one of {FLEET_SCENARIOS}"
            )
        if not 0 <= self.fault_board < self.boards:
            raise ConfigurationError("fault_board outside the fleet")
        if not 0 <= self.at_window < self.windows:
            raise ConfigurationError("at_window outside the run")


@dataclass(frozen=True)
class ArmSummary:
    """One arm's headline numbers."""

    arm: str
    tenants_admitted: int
    tenants_rejected: int
    total_violations: int
    #: violations in windows >= the fault window — the steady-state
    #: damage the arm's machinery did or did not contain
    steady_violations: int
    energy_uj: float
    sheds: int
    failovers: int
    #: windows between the (first) crash and the last victim re-placed,
    #: None when the arm performed no failover
    failover_lag_windows: Optional[int]


@dataclass(frozen=True)
class FleetComparison:
    """All three arms over one scenario, plus their reports."""

    spec: FleetScenarioSpec
    summaries: Tuple[ArmSummary, ...]
    healths: Dict[str, FleetHealth]

    def summary(self, arm: str) -> ArmSummary:
        for candidate in self.summaries:
            if candidate.arm == arm:
                return candidate
        raise ConfigurationError(f"no arm {arm!r} in comparison")


def arm_config(arm: str, spec: FleetScenarioSpec) -> GatewayConfig:
    if arm not in FLEET_ARMS:
        raise ConfigurationError(
            f"unknown arm {arm!r}; expected one of {FLEET_ARMS}"
        )
    return GatewayConfig(
        windows=spec.windows,
        shedding=arm in ("shed", "shed-failover"),
        failover=arm == "shed-failover",
    )


def summarize_arm(health: FleetHealth, spec: FleetScenarioSpec) -> ArmSummary:
    crash_windows = [
        e.window_index for e in health.events if e.kind == "board-crash"
    ]
    failover_windows = [
        e.window_index for e in health.events if e.kind == "failover"
    ]
    lag: Optional[int] = None
    if failover_windows and crash_windows:
        lag = max(failover_windows) - min(crash_windows)
    return ArmSummary(
        arm=health.arm,
        tenants_admitted=len(health.admitted_tenants()),
        tenants_rejected=len(health.events_of("reject")),
        total_violations=health.total_violations(),
        steady_violations=health.violations_after(spec.at_window),
        energy_uj=ordered_sum(w.energy_uj for w in health.windows),
        sheds=len(health.events_of("shed")),
        failovers=len(failover_windows),
        failover_lag_windows=lag,
    )


def run_fleet_arm(
    spec: FleetScenarioSpec,
    arm: str,
    workloads=None,
    boards=None,
) -> FleetHealth:
    """One arm end to end; catalogue/fleet reusable across arms."""
    if boards is None:
        boards = build_fleet(spec.boards)
    if workloads is None:
        workloads = build_tenant_workloads(
            build_tenant_catalog(spec.tenants, seed=spec.seed),
            seed=spec.seed,
        )
    fault_plan = build_fleet_fault_plan(
        spec.scenario,
        board_index=spec.fault_board,
        at_window=spec.at_window,
        seed=spec.seed,
    )
    gateway = Gateway(
        boards,
        workloads,
        fault_plan=fault_plan,
        config=arm_config(arm, spec),
        seed=spec.seed,
        label=f"fleet-{spec.scenario}-{arm}",
    )
    return gateway.run()


def run_fleet_scenario(spec: FleetScenarioSpec) -> FleetComparison:
    """All three arms over one catalogue, fleet and fault plan."""
    boards = build_fleet(spec.boards)
    workloads = build_tenant_workloads(
        build_tenant_catalog(spec.tenants, seed=spec.seed),
        seed=spec.seed,
    )
    healths: Dict[str, FleetHealth] = {}
    summaries = []
    for arm in FLEET_ARMS:
        health = run_fleet_arm(spec, arm, workloads=workloads, boards=boards)
        healths[arm] = health
        summaries.append(summarize_arm(health, spec))
    return FleetComparison(
        spec=spec, summaries=tuple(summaries), healths=healths
    )
