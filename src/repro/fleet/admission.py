"""Admission control: SLO feasibility, core headroom, energy budget.

A tenant is admitted only when some eligible board passes all three
gates, in order:

1. **SLO** — the tenant's canonical plan on that board kind is
   cost-model feasible and its modeled latency (inflated by any
   sustained throttle) is within the tenant's ``L_set``;
2. **headroom** — adding the plan's per-core busy time keeps the
   board's most-loaded core below the configured utilization headroom
   (the slack that absorbs congestion and measurement noise);
3. **energy** — the fleet's aggregate modeled energy per window,
   including the newcomer, stays within the fleet energy budget.

Among the boards that pass, the least-loaded one (projected max core
utilization, ties to the lower board index) wins — deterministic,
and it spreads tenants instead of packing failure domains.

Every decision carries the numbers it was made on; FLT002 later
re-checks ``admitted ⇒ modeled latency ≤ L_set`` straight from the
health report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fleet.placement import FleetScheduler
from repro.fleet.registry import BoardHandle
from repro.fleet.tenants import TenantWorkload
from repro.numerics import ordered_sum

__all__ = ["AdmissionConfig", "AdmissionDecision", "evaluate_admission"]


@dataclass(frozen=True)
class AdmissionConfig:
    """The admission controller's thresholds."""

    #: max projected utilization of any single core (busy / window)
    headroom: float = 0.85
    #: fleet-wide modeled energy budget per window, µJ; None = auto
    #: (scaled to the fleet size by the gateway)
    energy_budget_uj_per_window: Optional[float] = None
    #: admission attempts (initial + retries) before a final reject
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.headroom <= 1.0:
            raise ConfigurationError("headroom must be in (0, 1]")
        if (
            self.energy_budget_uj_per_window is not None
            and self.energy_budget_uj_per_window <= 0.0
        ):
            raise ConfigurationError("energy budget must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission attempt's outcome, with its evidence."""

    tenant_id: int
    window_index: int
    admitted: bool
    #: winning board (admitted) or None
    board_index: Optional[int]
    #: "admitted", "no-feasible-board", "no-headroom", "energy-budget"
    reason: str
    modeled_latency_us_per_byte: float
    l_set_us_per_byte: float
    projected_max_core_load: float
    projected_energy_uj_per_window: float


def evaluate_admission(
    workload: TenantWorkload,
    scheduler: FleetScheduler,
    eligible: Tuple[BoardHandle, ...],
    board_busy_us: Mapping[int, Mapping[int, float]],
    throttle_scale: Mapping[int, float],
    running_energy_uj_per_window: float,
    energy_budget_uj_per_window: float,
    window_index: int,
    window_period_us: float,
    config: AdmissionConfig,
) -> AdmissionDecision:
    """Gate one tenant against the fleet's current state.

    ``board_busy_us`` maps board index -> core -> committed busy µs per
    window; ``throttle_scale`` maps board index -> modeled-latency
    inflation under any sustained DVFS cap (1.0 at nominal frequency).
    """
    tenant_id = workload.tenant_id
    best: Optional[Tuple[float, float, BoardHandle]] = None
    saw_feasible = False
    for board in eligible:
        candidate = scheduler.candidate(
            tenant_id,
            board,
            board_busy_us.get(board.board_index, {}),
            window_period_us,
            throttle_scale=throttle_scale.get(board.board_index, 1.0),
        )
        if candidate is None:
            continue
        saw_feasible = True
        max_load, modeled = candidate
        if max_load > config.headroom:
            continue
        if best is None or max_load < best[0]:
            best = (max_load, modeled, board)

    if best is None:
        reason = "no-headroom" if saw_feasible else "no-feasible-board"
        return AdmissionDecision(
            tenant_id=tenant_id,
            window_index=window_index,
            admitted=False,
            board_index=None,
            reason=reason,
            modeled_latency_us_per_byte=0.0,
            l_set_us_per_byte=workload.l_set_us_per_byte,
            projected_max_core_load=0.0,
            projected_energy_uj_per_window=running_energy_uj_per_window,
        )

    max_load, modeled, board = best
    estimate = scheduler.plan_estimate(tenant_id, board)
    tenant_energy = (
        estimate.energy_uj_per_byte * workload.spec.window_bytes
    )
    projected_energy = ordered_sum(
        [running_energy_uj_per_window, tenant_energy]
    )
    if projected_energy > energy_budget_uj_per_window:
        return AdmissionDecision(
            tenant_id=tenant_id,
            window_index=window_index,
            admitted=False,
            board_index=None,
            reason="energy-budget",
            modeled_latency_us_per_byte=modeled,
            l_set_us_per_byte=workload.l_set_us_per_byte,
            projected_max_core_load=max_load,
            projected_energy_uj_per_window=projected_energy,
        )
    return AdmissionDecision(
        tenant_id=tenant_id,
        window_index=window_index,
        admitted=True,
        board_index=board.board_index,
        reason="admitted",
        modeled_latency_us_per_byte=modeled,
        l_set_us_per_byte=workload.l_set_us_per_byte,
        projected_max_core_load=max_load,
        projected_energy_uj_per_window=projected_energy,
    )
