"""Tenant catalogue: per-stream workloads, priorities and SLOs.

A *tenant* is one IoT stream session a customer wants served: a codec,
a data regime (Micro ``dynamic_range``), a window shape, a priority
class, and a latency SLO. The SLO is derived, not configured: each
tenant's ``L_set`` is its modeled CStream latency on the *reference
board* (the paper's rk3399) times a priority-dependent margin — so SLOs
are board-independent, deterministic, and achievable by construction on
at least one board kind.

:func:`build_tenant_catalog` synthesizes ``count`` tenants by cycling
codecs, data regimes and priorities — deterministic in ``seed`` and
``count`` only, so the same catalogue reappears across runs, arms and
job counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.compression import get_codec
from repro.core.baselines import WorkloadContext
from repro.core.profiler import WorkloadProfile, profile_workload
from repro.core.scheduler import Scheduler
from repro.datasets import MicroDataset
from repro.errors import ConfigurationError
from repro.simcore.boards import rk3399

__all__ = [
    "TenantSpec",
    "TenantWorkload",
    "build_tenant_catalog",
    "build_tenant_workloads",
]

#: bootstrap constraint used only to profile the reference plan the SLO
#: is derived from — loose enough that every catalogue codec schedules
#: feasibly on the reference board
_BOOTSTRAP_L_SET = 100.0

#: (codec, dynamic_range) regimes the catalogue cycles through
_CATALOG_REGIMES = (
    ("tcomp32", 500),
    ("tdic32", 2_000),
    ("tcomp32", 50_000),
    ("tdic32", 200),
)

#: priority classes cycled across tenants (higher = more important;
#: load shedding evicts the lowest first)
_CATALOG_PRIORITIES = (2, 0, 1)

#: SLO margin by priority class — premium tenants buy tighter SLOs,
#: but every class keeps enough slack that congestion noise alone
#: (a few percent) cannot breach it
_SLO_MARGIN_BY_PRIORITY = {0: 1.8, 1: 1.5, 2: 1.3}


@dataclass(frozen=True)
class TenantSpec:
    """Everything static about one tenant's stream session."""

    tenant_id: int
    name: str
    codec: str
    dynamic_range: int
    #: bytes per batch
    batch_bytes: int
    batches_per_window: int
    #: priority class: 0 (best effort) .. 2 (premium)
    priority: int
    #: L_set = slo_margin x modeled reference-board latency
    slo_margin: float
    #: gateway window the tenant first requests admission in
    arrival_window: int

    def __post_init__(self) -> None:
        if self.batch_bytes < 1:
            raise ConfigurationError("batch_bytes must be positive")
        if self.batches_per_window < 1:
            raise ConfigurationError("batches_per_window must be positive")
        if self.slo_margin <= 1.0:
            raise ConfigurationError(
                "slo_margin must exceed 1.0 (an SLO at exactly the "
                "modeled latency is unservable under any noise)"
            )
        if self.arrival_window < 0:
            raise ConfigurationError("arrival_window must be >= 0")

    @property
    def window_bytes(self) -> int:
        """Bytes the tenant streams per gateway window."""
        return self.batch_bytes * self.batches_per_window


@dataclass(frozen=True)
class TenantWorkload:
    """A tenant plus its profiled workload and derived SLO."""

    spec: TenantSpec
    profile: WorkloadProfile
    #: modeled CStream latency on the reference rk3399, µs/byte
    reference_latency_us_per_byte: float
    #: the SLO the admission controller enforces, µs/byte
    l_set_us_per_byte: float

    @property
    def tenant_id(self) -> int:
        return self.spec.tenant_id


def build_tenant_catalog(
    count: int,
    seed: int = 0,
    batch_bytes: int = 2048,
    batches_per_window: int = 3,
    arrival_stride: int = 2,
) -> Tuple[TenantSpec, ...]:
    """``count`` tenant specs, cycling regimes and priorities.

    ``arrival_stride`` staggers admission requests: ``arrival_stride``
    tenants arrive per window, so the admission controller fills the
    fleet gradually instead of in one burst.
    """
    if count < 1:
        raise ConfigurationError("a catalogue needs at least one tenant")
    if arrival_stride < 1:
        raise ConfigurationError("arrival_stride must be positive")
    specs = []
    for tenant_id in range(count):
        codec, dynamic_range = _CATALOG_REGIMES[
            tenant_id % len(_CATALOG_REGIMES)
        ]
        priority = _CATALOG_PRIORITIES[tenant_id % len(_CATALOG_PRIORITIES)]
        specs.append(
            TenantSpec(
                tenant_id=tenant_id,
                name=f"tenant-{tenant_id}-{codec}",
                codec=codec,
                dynamic_range=dynamic_range,
                batch_bytes=batch_bytes,
                batches_per_window=batches_per_window,
                priority=priority,
                slo_margin=_SLO_MARGIN_BY_PRIORITY[priority],
                arrival_window=tenant_id // arrival_stride,
            )
        )
    return tuple(specs)


def profile_tenant(spec: TenantSpec, seed: int = 0) -> WorkloadProfile:
    """Profile one tenant's codec on its data regime.

    The profiling seed is derived from (seed, tenant_id) so profiles
    are independent of catalogue order and of which tenants share a
    run.
    """
    return profile_workload(
        get_codec(spec.codec),
        MicroDataset(dynamic_range=spec.dynamic_range),
        spec.batch_bytes,
        batches=2,
        seed=seed * 1_000 + spec.tenant_id + 1,
    )


def build_tenant_workloads(
    specs: Tuple[TenantSpec, ...], seed: int = 0
) -> Tuple[TenantWorkload, ...]:
    """Profile every tenant and derive its SLO on the reference board.

    One reference rk3399 context per distinct profile; the modeled
    latency of the best-effort CStream plan under the bootstrap
    constraint anchors ``l_set = slo_margin x reference latency``.
    """
    reference = rk3399()
    workloads = []
    for spec in specs:
        profile = profile_tenant(spec, seed=seed)
        context = WorkloadContext.build(
            reference, profile, _BOOTSTRAP_L_SET, seed=seed
        )
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        reference_latency = result.estimate.latency_us_per_byte
        workloads.append(
            TenantWorkload(
                spec=spec,
                profile=profile,
                reference_latency_us_per_byte=reference_latency,
                l_set_us_per_byte=spec.slo_margin * reference_latency,
            )
        )
    return tuple(workloads)
