"""Per-board circuit breaker: closed → open → half-open → closed.

The gateway counts each board's *consecutive* failed window RPCs. At
``failure_threshold`` the breaker opens: the board takes no placements
and no window traffic, so a dead or flapping board stops burning
retries. After ``cooldown_windows`` the breaker lets one probe through
(half-open); a successful probe closes it, a failed one re-opens it and
restarts the cooldown.

Every transition is recorded with its window and reason, and
:func:`replay_transitions` re-validates a recorded sequence against the
legal state machine — that is invariant FLT003, and it makes breaker
traces in a :class:`~repro.obs.health.FleetHealth` report auditable
after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "BREAKER_STATES",
    "LEGAL_TRANSITIONS",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "replay_transitions",
]

BREAKER_STATES = ("closed", "open", "half-open")

#: the legal edges of the state machine (FLT003)
LEGAL_TRANSITIONS = frozenset({
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "closed"),
    ("half-open", "open"),
})


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery thresholds."""

    #: consecutive failed window RPCs that open the breaker
    failure_threshold: int = 2
    #: windows an open breaker waits before probing (half-open)
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown_windows < 1:
            raise ConfigurationError("cooldown_windows must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state-machine edge."""

    board_index: int
    window_index: int
    from_state: str
    to_state: str
    #: "threshold" (failures hit the trip point), "cooldown" (probe
    #: window reached), "probe-success", "probe-failure"
    reason: str


@dataclass
class CircuitBreaker:
    """The live per-board state machine the gateway drives."""

    board_index: int
    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: str = "closed"
    consecutive_failures: int = 0
    #: window the breaker last opened in (meaningful while open)
    opened_at_window: int = -1
    transitions: List[BreakerTransition] = field(default_factory=list)

    def _move(self, window: int, to_state: str, reason: str) -> None:
        edge = (self.state, to_state)
        if edge not in LEGAL_TRANSITIONS:
            raise ConfigurationError(
                f"illegal breaker transition {edge[0]} -> {edge[1]}"
            )
        self.transitions.append(
            BreakerTransition(
                board_index=self.board_index,
                window_index=window,
                from_state=self.state,
                to_state=to_state,
                reason=reason,
            )
        )
        self.state = to_state

    # -- gateway hooks -------------------------------------------------------

    def allows_traffic(self, window: int) -> bool:
        """May the gateway send this board window RPCs / placements?

        Called at the start of each window; an open breaker whose
        cooldown has elapsed moves to half-open here and lets one probe
        window through.
        """
        if self.state == "open":
            if window >= self.opened_at_window + self.config.cooldown_windows:
                self._move(window, "half-open", "cooldown")
                return True
            return False
        return True

    def record_success(self, window: int) -> None:
        """A window's RPCs against this board all succeeded."""
        if self.state == "half-open":
            self._move(window, "closed", "probe-success")
        self.consecutive_failures = 0

    def record_failure(self, window: int) -> None:
        """A window's RPCs against this board failed (post-retry)."""
        self.consecutive_failures += 1
        if self.state == "half-open":
            self.opened_at_window = window
            self._move(window, "open", "probe-failure")
        elif (
            self.state == "closed"
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.opened_at_window = window
            self._move(window, "open", "threshold")


def replay_transitions(
    transitions: Tuple[BreakerTransition, ...],
    initial_state: str = "closed",
) -> str:
    """Re-run a recorded transition sequence; return the final state.

    Raises :class:`~repro.errors.ConfigurationError` when the sequence
    breaks the chain (a transition's ``from_state`` is not the current
    state) or uses an illegal edge — the FLT003 check.
    """
    state = initial_state
    for transition in transitions:
        if transition.from_state != state:
            raise ConfigurationError(
                f"broken breaker trace: at {state!r} but transition "
                f"departs from {transition.from_state!r} "
                f"(window {transition.window_index})"
            )
        if (transition.from_state, transition.to_state) not in LEGAL_TRANSITIONS:
            raise ConfigurationError(
                f"illegal breaker transition {transition.from_state} -> "
                f"{transition.to_state} (window {transition.window_index})"
            )
        state = transition.to_state
    return state
