"""Bounded exponential backoff with seeded, order-independent jitter.

The gateway queues rejected admissions and shed tenants for re-try.
Raw exponential backoff synchronizes retries into thundering herds, so
each delay carries jitter — but the usual ``random()`` jitter would
make runs irreproducible and parallel execution order-dependent. Here
every delay is drawn from a generator keyed by
``(seed, *key, attempt)``: the draw depends only on *who* is retrying
and *which* attempt it is, never on when or in what order delays are
computed. The same schedule therefore falls out under ``jobs=1`` and
``jobs=2``, across reruns, and across scenario arms.

Delays are measured in gateway windows (the fleet's only clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy"]

#: stream-domain tag so backoff draws never collide with the gateway's
#: measurement-noise streams derived from the same seed
_BACKOFF_STREAM = 11


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic ``min(base * factor^attempt, cap) * (1 + jitter*u)``."""

    seed: int = 0
    #: first-retry delay, in windows
    base_windows: float = 1.0
    factor: float = 2.0
    #: delay ceiling (pre-jitter), in windows
    cap_windows: float = 8.0
    #: jitter fraction: u ~ U[0,1) widens the delay by up to this much
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_windows <= 0.0:
            raise ConfigurationError("base_windows must be positive")
        if self.factor < 1.0:
            raise ConfigurationError("factor must be >= 1")
        if self.cap_windows < self.base_windows:
            raise ConfigurationError("cap_windows must be >= base_windows")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def delay_windows(self, key: Tuple[int, ...], attempt: int) -> float:
        """The jittered delay before retry number ``attempt`` (0-based).

        ``key`` identifies the retrying entity (e.g. ``(tenant_id,)``).
        The draw is a pure function of (seed, key, attempt).
        """
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0")
        raw = min(
            self.base_windows * self.factor ** attempt, self.cap_windows
        )
        rng = np.random.default_rng(
            [self.seed, _BACKOFF_STREAM, *key, attempt]
        )
        return raw * (1.0 + self.jitter * rng.random())

    def schedule(
        self, key: Tuple[int, ...], attempts: int
    ) -> Tuple[float, ...]:
        """The full retry schedule: ``attempts`` consecutive delays."""
        return tuple(
            self.delay_windows(key, attempt) for attempt in range(attempts)
        )

    @property
    def max_delay_windows(self) -> float:
        """Upper bound on any delay this policy can emit (FLT005)."""
        return self.cap_windows * (1.0 + self.jitter)
