"""Placement and cross-board failover for the fleet.

Plans stay portable across boards by construction: every tenant is
scheduled on the *canonical graph* its codec decomposes into on the
reference rk3399, evaluated under each board kind's own calibrated cost
model. Same graph, same stage indices, core ids 0–5 valid on every
kind — so an incumbent plan from a dying board warm-starts the replan
on the destination board, ``SchedulingPlan.remap_cores`` routes the
incumbent through a cluster-aware core mapping first (little cores to
little cores), and ``migration_cost`` prices the resulting delta with
the destination's communication table, exactly the machinery the
single-board control loop uses at window boundaries.

Boards of one kind share calibration, so contexts, models and schedule
results are cached per (tenant, kind) — a 6-board fleet prices like a
3-kind fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.baselines import WorkloadContext
from repro.core.cost_model import CostModel
from repro.core.plan import (
    MigrationCost,
    PlanEstimate,
    SchedulingPlan,
    migration_cost,
)
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.fleet.registry import BoardHandle
from repro.fleet.tenants import TenantWorkload
from repro.simcore.boards import BoardSpec, rk3399

__all__ = ["Placement", "FleetScheduler", "cross_board_routing"]

#: replica state footprint as a fraction of one batch's stage output —
#: mirrors ControllerConfig.state_bytes_scale
_STATE_BYTES_SCALE = 0.25


@dataclass(frozen=True)
class Placement:
    """One tenant pinned to one board with a concrete plan."""

    tenant_id: int
    board_index: int
    plan: SchedulingPlan
    estimate: PlanEstimate
    #: per-core busy time this tenant adds per gateway window, µs
    busy_us_by_core: Tuple[Tuple[int, float], ...]

    def busy_map(self) -> Dict[int, float]:
        return dict(self.busy_us_by_core)


def cross_board_routing(
    source: BoardSpec, destination: BoardSpec
) -> Dict[int, int]:
    """Map each source core id to a same-type destination core id.

    Little cores route to little cores and big to big, round-robin in
    id order, so a plan's cluster intent survives topology changes
    (e.g. rk3399's 4+2 onto the edge board's 2+4).
    """
    routing: Dict[int, int] = {}
    for src_ids, dst_ids in (
        (source.little_core_ids, destination.little_core_ids),
        (source.big_core_ids, destination.big_core_ids),
    ):
        pool = dst_ids if dst_ids else destination.core_ids
        for position, core_id in enumerate(src_ids):
            routing[core_id] = pool[position % len(pool)]
    return routing


class FleetScheduler:
    """Builds, caches and re-places per-tenant plans across the fleet."""

    def __init__(
        self,
        workloads: Tuple[TenantWorkload, ...],
        boards: Tuple[BoardHandle, ...],
        seed: int = 0,
    ) -> None:
        if not boards:
            raise ConfigurationError("fleet has no boards")
        self.workloads = {w.tenant_id: w for w in workloads}
        self.boards = boards
        self.seed = seed
        self._reference = rk3399()
        #: tenant_id -> canonical (reference-board) fine graph
        self._graphs: Dict[int, object] = {}
        #: (tenant_id, kind) -> WorkloadContext
        self._contexts: Dict[Tuple[int, str], WorkloadContext] = {}
        #: (tenant_id, kind) -> ScheduleResult of the canonical graph
        self._schedules: Dict[Tuple[int, str], object] = {}

    # -- cached per-(tenant, kind) artifacts ---------------------------------

    def canonical_graph(self, tenant_id: int):
        if tenant_id not in self._graphs:
            workload = self.workloads[tenant_id]
            context = WorkloadContext.build(
                self._reference,
                workload.profile,
                workload.l_set_us_per_byte,
                seed=self.seed,
            )
            self._graphs[tenant_id] = context.fine_graph
        return self._graphs[tenant_id]

    def context(self, tenant_id: int, board: BoardHandle) -> WorkloadContext:
        key = (tenant_id, board.kind)
        if key not in self._contexts:
            workload = self.workloads[tenant_id]
            self._contexts[key] = WorkloadContext.build(
                board.spec,
                workload.profile,
                workload.l_set_us_per_byte,
                seed=self.seed,
            )
        return self._contexts[key]

    def model(self, tenant_id: int, board: BoardHandle) -> CostModel:
        """A fresh cost model for this tenant's canonical graph on this
        board kind (fresh, because controllers mutate their model)."""
        return self.context(tenant_id, board).cost_model(
            self.canonical_graph(tenant_id)
        )

    def plan_estimate(
        self, tenant_id: int, board: BoardHandle
    ) -> PlanEstimate:
        key = (tenant_id, board.kind)
        if key not in self._schedules:
            model = self.model(tenant_id, board)
            self._schedules[key] = Scheduler(model).schedule(best_effort=True)
        return self._schedules[key].estimate

    def busy_us_by_core(
        self, estimate: PlanEstimate, window_bytes: int
    ) -> Tuple[Tuple[int, float], ...]:
        """Per-core busy time one window of this plan costs, µs."""
        return tuple(
            (core, load * window_bytes)
            for core, load in sorted(estimate.core_load_us_per_byte.items())
        )

    # -- placement -----------------------------------------------------------

    def candidate(
        self,
        tenant_id: int,
        board: BoardHandle,
        board_busy_us: Mapping[int, float],
        window_period_us: float,
        throttle_scale: float = 1.0,
    ) -> Optional[Tuple[float, float]]:
        """(projected max core load, modeled latency) on this board, or
        None when the tenant's plan is not servable there.

        ``throttle_scale`` inflates the modeled latency for boards under
        a sustained DVFS cap, so placement never routes a tenant onto a
        board that cannot meet its SLO while throttled.
        """
        workload = self.workloads[tenant_id]
        estimate = self.plan_estimate(tenant_id, board)
        modeled = estimate.latency_us_per_byte * throttle_scale
        if not estimate.feasible or modeled > workload.l_set_us_per_byte:
            return None
        projected: Dict[int, float] = dict(board_busy_us)
        for core, busy in self.busy_us_by_core(
            estimate, workload.spec.window_bytes
        ):
            projected[core] = projected.get(core, 0.0) + busy
        max_load = max(
            (busy / window_period_us for busy in projected.values()),
            default=0.0,
        )
        return (max_load, modeled)

    def build_placement(
        self, tenant_id: int, board: BoardHandle
    ) -> Placement:
        workload = self.workloads[tenant_id]
        estimate = self.plan_estimate(tenant_id, board)
        return Placement(
            tenant_id=tenant_id,
            board_index=board.board_index,
            plan=estimate.plan,
            estimate=estimate,
            busy_us_by_core=self.busy_us_by_core(
                estimate, workload.spec.window_bytes
            ),
        )

    # -- cross-board failover ------------------------------------------------

    def failover_placement(
        self,
        tenant_id: int,
        source: BoardHandle,
        incumbent: SchedulingPlan,
        destination: BoardHandle,
    ) -> Tuple[Placement, MigrationCost]:
        """Re-place a victim tenant, warm-started from its old plan.

        The incumbent is routed through the cluster-aware core mapping
        (``remap_cores``) and seeds the destination's branch-and-bound;
        the returned migration cost prices the state actually moved,
        using the destination's profiled communication table.
        """
        workload = self.workloads[tenant_id]
        model = self.model(tenant_id, destination)
        routing = cross_board_routing(source.spec, destination.spec)
        patched = incumbent.remap_cores(routing)
        result = Scheduler(model).schedule(
            best_effort=True, warm_start=patched
        )
        candidate = result.estimate
        state_bytes = {
            stage: model.stage_output_bytes(stage) * _STATE_BYTES_SCALE
            for stage in range(model.graph.stage_count)
        }
        cost = migration_cost(
            patched.diff(candidate.plan),
            destination.spec,
            model.communication,
            state_bytes,
        )
        placement = Placement(
            tenant_id=tenant_id,
            board_index=destination.board_index,
            plan=candidate.plan,
            estimate=candidate,
            busy_us_by_core=self.busy_us_by_core(
                candidate, workload.spec.window_bytes
            ),
        )
        return placement, cost
