"""The fleet's board catalogue.

Three board kinds: the paper's rk3399, the Jetson-TX2-like SoC from
PR 9, and a synthetic "edge" board defined here — an inverted-asymmetry
custom SoC (2 little + 4 big cores) that exercises placement decisions
neither stock board does. All kinds expose six cores with ids 0–5, so a
:class:`~repro.core.plan.SchedulingPlan` built on one board names valid
cores on every other — that is what lets cross-board failover reuse
``SchedulingPlan.remap_cores`` and warm-started replans unchanged.

A fleet is a tuple of :class:`BoardHandle` instances ("rk3399-0",
"jetson-1", ...); :func:`build_fleet` cycles the kinds so any fleet size
stays heterogeneous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simcore.boards import BoardSpec, jetson_tx2_like, rk3399
from repro.simcore.hardware import ClusterSpec, CoreSpec, CoreType, PiecewiseRoofline
from repro.simcore.interconnect import InterconnectSpec, Path, PathCost

__all__ = [
    "BOARD_KINDS",
    "DEFAULT_KIND_CYCLE",
    "BoardHandle",
    "build_fleet",
    "edge_board",
]


# --- synthetic "edge" board --------------------------------------------------
#
# A custom edge-gateway SoC with the cluster ratio flipped relative to
# the rk3399: two efficiency cores and four performance cores. The
# curves are mild variations of the rk3399 calibration (same piecewise
# shape, scaled roofs) — the point is topological diversity, not a new
# calibration story.

_EDGE_LITTLE_FREQS = (408.0, 600.0, 816.0, 1008.0, 1200.0)
_EDGE_BIG_FREQS = (600.0, 816.0, 1008.0, 1200.0, 1416.0, 1608.0)

_EDGE_LITTLE_ETA = PiecewiseRoofline(
    breakpoints=(30.0, 70.0, 330.0),
    slopes=(0.17, -0.015, 0.015),
    intercepts=(0.3, 6.2, 3.9),
    roof=8.4,
)
_EDGE_BIG_ETA = PiecewiseRoofline(
    breakpoints=(30.0, 100.0, 340.0),
    slopes=(0.1, 0.07, 0.046),
    intercepts=(0.5, 1.55, 3.9),
    roof=17.8,
)
_EDGE_LITTLE_ZETA = PiecewiseRoofline(
    breakpoints=(30.0, 70.0, 330.0),
    slopes=(36.0, -5.5, 1.45),
    intercepts=(10.0, 1280.0, 790.0),
    roof=1245.0,
)
_EDGE_BIG_ZETA = PiecewiseRoofline(
    breakpoints=(50.0, 380.0),
    slopes=(3.1, 2.9),
    intercepts=(28.0, 37.0),
    roof=1080.0,
)

_EDGE_INTERCONNECT = InterconnectSpec(
    costs={
        Path.C0: PathCost(
            unit_cost_us_per_byte=1.5,
            message_overhead_us=28.0,
            raw_bandwidth_gbps=2.9,
            raw_latency_ns=66.0,
            message_energy_uj=11.0,
        ),
        Path.C1: PathCost(
            unit_cost_us_per_byte=2.0,
            message_overhead_us=52.0,
            raw_bandwidth_gbps=0.9,
            raw_latency_ns=128.0,
            message_energy_uj=22.0,
        ),
        Path.C2: PathCost(
            unit_cost_us_per_byte=5.4,
            message_overhead_us=140.0,
            raw_bandwidth_gbps=0.5,
            raw_latency_ns=360.0,
            message_energy_uj=48.0,
        ),
    }
)


def edge_board() -> BoardSpec:
    """Synthetic edge-gateway SoC: 2 little (ids 0-1) + 4 big (2-5)."""
    cores = []
    for core_id in (0, 1):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.LITTLE,
                cluster_id=0,
                model="Edge-E1",
                max_frequency_mhz=1200.0,
                frequency_levels_mhz=_EDGE_LITTLE_FREQS,
                eta=_EDGE_LITTLE_ETA,
                zeta=_EDGE_LITTLE_ZETA,
                static_power_w=0.00005,
                busy_floor_power_w=0.0014,
            )
        )
    for core_id in (2, 3, 4, 5):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.BIG,
                cluster_id=1,
                model="Edge-P4",
                max_frequency_mhz=1608.0,
                frequency_levels_mhz=_EDGE_BIG_FREQS,
                eta=_EDGE_BIG_ETA,
                zeta=_EDGE_BIG_ZETA,
                static_power_w=0.00018,
                busy_floor_power_w=0.0045,
            )
        )
    clusters = (
        ClusterSpec(cluster_id=0, core_type=CoreType.LITTLE, core_ids=(0, 1)),
        ClusterSpec(cluster_id=1, core_type=CoreType.BIG, core_ids=(2, 3, 4, 5)),
    )
    return BoardSpec(
        name="edge (synthetic 2xE1 + 4xP4)",
        cores=tuple(cores),
        clusters=clusters,
        interconnect=_EDGE_INTERCONNECT,
        uncore_power_w=0.00025,
        context_switch_instructions=330.0,
        replication_latency_overhead=0.07,
        replication_energy_overhead=0.27,
    )


#: board kind name -> BoardSpec factory
BOARD_KINDS = {
    "rk3399": rk3399,
    "jetson": jetson_tx2_like,
    "edge": edge_board,
}

#: the order :func:`build_fleet` cycles kinds in
DEFAULT_KIND_CYCLE = ("rk3399", "jetson", "edge")


@dataclass(frozen=True)
class BoardHandle:
    """One physical board instance in the fleet."""

    #: position in the fleet's board list — the id faults and health
    #: records use
    board_index: int
    #: instance name, e.g. "rk3399-0"
    name: str
    #: kind key into :data:`BOARD_KINDS`
    kind: str
    spec: BoardSpec


def build_fleet(size: int, kinds=None) -> tuple:
    """``size`` board handles, cycling ``kinds`` for heterogeneity.

    Instance names carry the fleet index ("jetson-1"), so two boards of
    the same kind stay distinguishable in health reports and logs.
    """
    if size < 1:
        raise ConfigurationError("a fleet needs at least one board")
    cycle = tuple(kinds) if kinds is not None else DEFAULT_KIND_CYCLE
    for kind in cycle:
        if kind not in BOARD_KINDS:
            raise ConfigurationError(
                f"unknown board kind {kind!r}; "
                f"expected one of {sorted(BOARD_KINDS)}"
            )
    handles = []
    for index in range(size):
        kind = cycle[index % len(cycle)]
        handles.append(
            BoardHandle(
                board_index=index,
                name=f"{kind}-{index}",
                kind=kind,
                spec=BOARD_KINDS[kind](),
            )
        )
    return tuple(handles)
