"""Fleet serving tier: many boards, many tenants, one gateway.

Everything below :mod:`repro.control` schedules one session on one
board. This package is the robustness shell around that proven inner
loop: a deterministic simulated fleet of heterogeneous boards
(:mod:`~repro.fleet.registry`), each running one
:class:`~repro.control.controller.SessionController` per placed tenant
(driven through :class:`~repro.control.heartbeat.ExternalHeartbeat`),
fronted by a gateway (:mod:`~repro.fleet.gateway`) that admits
(:mod:`~repro.fleet.admission`), places (:mod:`~repro.fleet.placement`),
sheds, retries with seeded-jitter backoff (:mod:`~repro.fleet.backoff`),
trips per-board circuit breakers (:mod:`~repro.fleet.breaker`) and
fails tenants over across boards when a board dies.

The whole tier is a deterministic simulation: board "measurements" are
cost-model estimates perturbed by congestion, throttle factors and
seeded noise keyed by (seed, tenant, window) — same seed, byte-identical
:class:`~repro.obs.health.FleetHealth` report. The package sits in the
linter's strict scope (CSA/CSU) and the gateway loop is a whole-program
flow-analysis entry point, so wall clocks, unseeded RNG and environment
reads are mechanically excluded.
"""

from repro.fleet.admission import AdmissionConfig, AdmissionDecision
from repro.fleet.backoff import BackoffPolicy
from repro.fleet.breaker import BreakerConfig, BreakerTransition, CircuitBreaker
from repro.fleet.gateway import Gateway, GatewayConfig
from repro.fleet.placement import FleetScheduler, Placement
from repro.fleet.registry import (
    BOARD_KINDS,
    BoardHandle,
    build_fleet,
    edge_board,
)
from repro.fleet.scenario import (
    FLEET_ARMS,
    FleetComparison,
    FleetScenarioSpec,
    run_fleet_arm,
    run_fleet_scenario,
)
from repro.fleet.tenants import TenantSpec, TenantWorkload, build_tenant_catalog

__all__ = [
    "AdmissionConfig",
    "AdmissionDecision",
    "BackoffPolicy",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "Gateway",
    "GatewayConfig",
    "FleetScheduler",
    "Placement",
    "BOARD_KINDS",
    "BoardHandle",
    "build_fleet",
    "edge_board",
    "FLEET_ARMS",
    "FleetComparison",
    "FleetScenarioSpec",
    "run_fleet_arm",
    "run_fleet_scenario",
    "TenantSpec",
    "TenantWorkload",
    "build_tenant_catalog",
]
