"""Deterministic numeric reductions.

Floating-point addition is not associative, so the *order* in which a
sequence of energies or latencies is reduced changes the low bits of the
result. Every invariant this reproduction tests — serial == parallel ==
warm-cache equality, traced == untraced byte-identity, CStream ≤ CS —
therefore requires accumulations over per-task/per-core quantities to be
*order-pinned*: the reduction order must be a deterministic function of
the inputs, never of set/hash ordering or thread interleaving.

:func:`ordered_sum` is that contract made explicit. It computes exactly
what ``sum(values)`` computes over the same iteration order (a plain
left fold — no re-sorting, no pairwise tree, so swapping it in never
changes an existing result), but its call sites assert "this order is
deliberate". The determinism linter (rule ``CSA005`` in
:mod:`repro.analysis.lint`) flags bare ``sum()`` over energy/latency
sequences in the simulation and scheduling packages and points here.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ordered_sum"]


def ordered_sum(values: Iterable[float], start: float = 0.0) -> float:
    """Left-fold sum of ``values`` in their iteration order.

    Identical to ``sum(values, start)`` — the point is the name: callers
    guarantee the iterable's order is deterministic (a tuple, a list, an
    insertion-ordered dict's ``.values()``), making energy/latency
    accumulation reproducible bit-for-bit across runs and processes.
    """
    total = start
    for value in values:
        total += value
    return total
