"""Exception hierarchy for the CStream reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class CorruptStreamError(CompressionError):
    """A compressed stream could not be decoded (truncated or corrupt)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a plan for the given constraints."""


class InfeasiblePlanError(SchedulingError):
    """No scheduling plan satisfies the latency constraint with the
    available hardware resources."""


class InvariantViolationError(SchedulingError):
    """A scheduling plan (or trace stream) violated a structural
    invariant checked by :mod:`repro.analysis.verify` — e.g. a cyclic
    dependency graph, an unknown core id, or missing codec steps.

    Carries the underlying findings on :attr:`findings` so callers can
    inspect which invariant codes fired."""

    def __init__(self, message: str, findings=()):
        super().__init__(message)
        self.findings = tuple(findings)


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ProfilingError(ReproError):
    """Dry-run profiling failed to produce usable cost samples."""


class DatasetError(ReproError):
    """A dataset generator received invalid parameters."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent options."""
