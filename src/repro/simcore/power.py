"""Power accounting and the board energy meter.

The paper measures energy with a custom INA226 + ESP32 meter attached to
the board's supply rail (§VI-C, Fig 6). The simulated equivalent is
:class:`EnergyMeter`: components report timed power draws (busy
intervals, context switches, DVFS transitions) and the meter integrates
them, together with always-on static power (per-core leakage + uncore),
over the measurement window.

Like the real meter, it measures *everything* — including scheduler and
profiling overhead — which is one source of the cost model's residual
error in Table V (the model only predicts task energies, Eq 4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.numerics import ordered_sum
from repro.simcore.boards import BoardSpec

__all__ = ["EnergyMeter", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Integrated energy (µJ) by accounting category."""

    busy_uj: float
    static_uj: float
    overhead_uj: float

    @property
    def total_uj(self) -> float:
        return self.busy_uj + self.static_uj + self.overhead_uj


class EnergyMeter:
    """Integrates component power reports over a measurement window.

    Usage: components call :meth:`record_busy` / :meth:`record_overhead`
    as simulated time advances; :meth:`finalize` closes the window at a
    given end time and adds static energy for the whole duration.
    """

    def __init__(
        self,
        board: BoardSpec,
        sampling_interval_us: float = 1000.0,
        trace=None,
        clock=None,
    ) -> None:
        if sampling_interval_us <= 0:
            raise SimulationError("sampling interval must be positive")
        self.board = board
        self.sampling_interval_us = sampling_interval_us
        self.trace = trace
        self.clock = clock
        self._busy_uj: Dict[int, float] = defaultdict(float)
        self._overhead_uj = 0.0
        self._intervals: List[Tuple[float, float, float]] = []  # start, end, W
        self._finalized_window: float = None

    # -- recording ---------------------------------------------------------

    def record_busy(
        self, core_id: int, start_us: float, duration_us: float, power_w: float
    ) -> float:
        """A core ran at ``power_w`` for ``duration_us``; returns the µJ."""
        if duration_us < 0 or power_w < 0:
            raise SimulationError("busy interval must have non-negative extent")
        energy = power_w * duration_us  # W × µs = µJ
        self._busy_uj[core_id] += energy
        self._intervals.append((start_us, start_us + duration_us, power_w))
        if self.trace is not None:
            self.trace.energy_sample(
                "busy", energy, start_us + duration_us
            )
        return energy

    def record_overhead(self, energy_uj: float) -> None:
        """Scheduling / switching / migration energy, lump-sum."""
        if energy_uj < 0:
            raise SimulationError("overhead energy must be non-negative")
        self._overhead_uj += energy_uj
        if self.trace is not None:
            self.trace.energy_sample(
                "overhead",
                energy_uj,
                self.clock() if self.clock is not None else 0.0,
            )

    # -- results -----------------------------------------------------------

    def finalize(self, window_us: float) -> EnergyBreakdown:
        """Close the window: add static power for ``window_us``."""
        if window_us < 0:
            raise SimulationError("measurement window must be non-negative")
        self._finalized_window = window_us
        static_power = self.board.uncore_power_w + ordered_sum(
            core.static_power_w for core in self.board.cores
        )
        return EnergyBreakdown(
            busy_uj=ordered_sum(self._busy_uj.values()),
            static_uj=static_power * window_us,
            overhead_uj=self._overhead_uj,
        )

    def busy_energy_by_core(self) -> Dict[int, float]:
        """µJ of busy energy attributed to each core so far."""
        return dict(self._busy_uj)

    def power_trace(self, window_us: float) -> List[Tuple[float, float]]:
        """Reconstruct (time, W) samples at the meter's sampling interval.

        This is what the INA226 stream would look like: busy power of all
        overlapping intervals plus the constant static floor.
        """
        static_power = self.board.uncore_power_w + ordered_sum(
            core.static_power_w for core in self.board.cores
        )
        samples: List[Tuple[float, float]] = []
        t = 0.0
        while t <= window_us:
            level = static_power
            for start, end, power in self._intervals:
                if start <= t < end:
                    level += power
            samples.append((t, level))
            t += self.sampling_interval_us
        return samples
