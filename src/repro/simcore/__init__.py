"""Asymmetric-multicore board simulator (the reproduction's substrate)."""

from repro.simcore.boards import BoardSpec, jetson_tx2_like, rk3399
from repro.simcore.dvfs import (
    ConservativeGovernor,
    Governor,
    OndemandGovernor,
    StaticGovernor,
    get_governor,
)
from repro.simcore.engine import Event, Process, Simulator, Store
from repro.simcore.hardware import ClusterSpec, CoreSpec, CoreType, PiecewiseRoofline
from repro.simcore.interconnect import InterconnectSpec, Path, PathCost, stream_probe
from repro.simcore.os_sched import eas_place
from repro.simcore.power import EnergyBreakdown, EnergyMeter

__all__ = [
    "BoardSpec",
    "ClusterSpec",
    "ConservativeGovernor",
    "CoreSpec",
    "CoreType",
    "EnergyBreakdown",
    "EnergyMeter",
    "Event",
    "Governor",
    "InterconnectSpec",
    "OndemandGovernor",
    "Path",
    "PathCost",
    "PiecewiseRoofline",
    "Process",
    "Simulator",
    "StaticGovernor",
    "Store",
    "eas_place",
    "get_governor",
    "jetson_tx2_like",
    "rk3399",
    "stream_probe",
]
