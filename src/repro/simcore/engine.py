"""A compact discrete-event simulation engine.

The asymmetric-multicore board is simulated as a set of cooperating
processes (compression tasks, DVFS governors, the OS scheduler) advancing
a shared virtual clock. The engine is a minimal generator-based DES in
the style of SimPy:

* a :class:`Simulator` owns the event calendar and the clock
  (microseconds);
* a :class:`Process` wraps a generator that ``yield``\\ s events — most
  commonly :meth:`Simulator.timeout` — and resumes when they fire;
* a :class:`Store` is a FIFO channel with optional capacity, used for the
  message queues between pipeline tasks.

Only the features this package needs are implemented, but they are
implemented fully: deterministic FIFO ordering for simultaneous events,
process completion events (so processes can join each other), and error
propagation out of :meth:`Simulator.run`.

Performance (see DESIGN.md "Performance engineering"): the calendar is
*indexed* — a dict of exact-timestamp FIFO buckets plus a heap of the
distinct pending timestamps — rather than one heap of
``(time, sequence, event)`` tuples. Most events in a pipeline
simulation land on a timestamp that already exists (zero-delay store
handshakes, same-tick resumes), which the index turns into one dict hit
and a list append, no tuple comparisons. Within a bucket, insertion
order *is* the old sequence order, so pop order is provably identical
to the heap it replaced. Events have no cancel API (they fire exactly
once), so no lazy-cancellation bookkeeping is needed. Internal
engine-owned events — process bootstraps, already-triggered-target
resume ticks, :meth:`Simulator.all_of` deferred counts — are recycled
through a free-list the public constructors (``timeout``/``event``/
store handshakes) draw from; events handed to user code are never
recycled, so holding one after it fired stays safe.

Observability: a :class:`Simulator` may carry a
:class:`~repro.obs.trace.TraceRecorder` (``trace=``). Named stores then
report their queue depth on every put/get, and — when the recorder asks
for ``process_events`` — process resume/termination emits instants.
Every hook is a guarded read-only observer, so a traced simulation is
event-for-event identical to an untraced one.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Process", "Simulator", "Store"]


class Event:
    """A one-shot occurrence in virtual time.

    An event is *queued* once :meth:`succeed` places it on the calendar
    with a value, and *triggered* once the simulator pops it and runs its
    callbacks. Processes waiting on an event resume with its value.

    ``recyclable`` marks engine-internal events (bootstraps, resume
    ticks, join counters) that provably have no external references once
    fired; the run loop resets those into the simulator's free-list.
    """

    __slots__ = (
        "simulator", "callbacks", "queued", "triggered", "value", "recyclable"
    )

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.callbacks: List[Callable[["Event"], None]] = []
        self.queued = False
        self.triggered = False
        self.value: Any = None
        self.recyclable = False

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Queue the event to fire ``delay`` µs from now with ``value``."""
        if self.queued:
            raise SimulationError("event succeeded twice")
        self.queued = True
        self.value = value
        # Inlined Simulator._schedule — succeed() is the engine's single
        # hottest call and the extra frame was measurable.
        simulator = self.simulator
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} into the past")
        at = simulator.now + delay
        bucket = simulator._buckets.get(at)
        if bucket is None:
            simulator._buckets[at] = [self]
            heapq.heappush(simulator._times, at)
        else:
            bucket.append(self)
        return self


class Process(Event):
    """An active entity driven by a generator.

    The generator yields :class:`Event` instances; the process resumes
    with ``event.value`` when the event fires. A process is itself an
    event that triggers (with the generator's return value) when the
    generator finishes, so other processes can wait for it.
    """

    __slots__ = ("_generator", "name", "_traced")

    def __init__(
        self,
        simulator: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(simulator)
        self._generator = generator
        self.name = name
        trace = simulator.trace
        self._traced = trace is not None and trace.process_events
        bootstrap = simulator._internal_event()
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        simulator = self.simulator
        if self._traced:
            trace = simulator.trace
            if trace is not None:
                trace.process_event("resume", self.name, simulator.now)
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if self._traced:
                trace = simulator.trace
                if trace is not None:
                    trace.process_event("end", self.name, simulator.now)
            if not self.queued:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.triggered:
            # The event already fired; resume on the next tick so that
            # event ordering stays deterministic.
            immediate = simulator._internal_event()
            immediate.callbacks.append(self._resume)
            immediate.succeed(target.value)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Indexed event calendar plus virtual clock (microseconds).

    ``trace`` is an optional :class:`~repro.obs.trace.TraceRecorder`
    that named stores and processes report to; ``None`` (the default)
    keeps every hook on its zero-cost guard path.
    """

    def __init__(self, trace=None) -> None:
        self.now = 0.0
        self.trace = trace
        #: exact timestamp -> FIFO list of events queued for it
        self._buckets = {}
        #: heap of the distinct timestamps present in ``_buckets``
        self._times: List[float] = []
        #: recycled engine-internal events (see :class:`Event`)
        self._free: List[Event] = []

    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} into the past")
        at = self.now + delay
        bucket = self._buckets.get(at)
        if bucket is None:
            self._buckets[at] = [event]
            heapq.heappush(self._times, at)
        else:
            bucket.append(event)

    def _internal_event(self) -> Event:
        """A fresh (or recycled) event for engine-internal plumbing."""
        free = self._free
        if free:
            event = free.pop()
            event.recyclable = True
            return event
        event = Event(self)
        event.recyclable = True
        return event

    def timeout(self, delay: float, value: Any = None, transient: bool = False) -> Event:
        """An event that fires ``delay`` microseconds from now.

        ``transient=True`` promises the caller will not retain the event
        after it fires (a fire-and-forget sleep); the engine then
        recycles it through the free-list. The default keeps the event
        caller-owned forever, so holding a timeout across
        :meth:`run` calls stays safe.
        """
        free = self._free
        event = free.pop() if free else Event(self)
        if transient:
            event.recyclable = True
        event.succeed(value, delay=delay)
        return event

    def event(self, transient: bool = False) -> Event:
        """A fresh unqueued event (queue it with ``succeed``).

        ``transient`` has the same not-retained-after-firing contract as
        in :meth:`timeout`.
        """
        free = self._free
        event = free.pop() if free else Event(self)
        if transient:
            event.recyclable = True
        return event

    def process(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired.

        The join's value is the list of member values in the order the
        members were passed (not the order they fired), so waiters see a
        deterministic result. Already-triggered members count
        immediately; an empty list yields a join that fires on the next
        tick — both cases keep a reconfiguration barrier well-defined
        even when a window had nothing in flight.

        Already-fired members are folded into one deferred count event
        (not one tick event each): the deferred decrement lands on the
        calendar at the position the *first* per-member tick used to
        occupy, and since the per-member ticks were scheduled
        back-to-back nothing else could ever fire between them — so
        collapsing them is observably identical while a wide drain
        barrier (windowed sessions fire one per window) allocates O(1)
        extra events instead of O(members).
        """
        join = self.event()
        members = list(events)
        if not members:
            join.succeed([])
            return join
        remaining = [len(members)]

        def _on_fire(_event: Event) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                join.succeed([m.value for m in members])

        already_fired = 0
        for member in members:
            if member.triggered:
                already_fired += 1
            else:
                member.callbacks.append(_on_fire)

        if already_fired:
            def _count_already_fired(_event: Event) -> None:
                remaining[0] -= already_fired - 1
                _on_fire(_event)

            deferred = self._internal_event()
            deferred.callbacks.append(_count_already_fired)
            deferred.succeed(None)
        return join

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the calendar drains or the clock passes
        ``until``. Returns the final clock value."""
        buckets = self._buckets
        times = self._times
        free = self._free
        while times:
            time = times[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            self.now = time
            # Events scheduled *while draining* at the same timestamp are
            # appended to this same bucket and drained in this pass —
            # exactly where the old heap's sequence numbers put them.
            bucket = buckets[time]
            index = 0
            try:
                while index < len(bucket):
                    event = bucket[index]
                    index += 1
                    event.triggered = True
                    callbacks, event.callbacks = event.callbacks, []
                    for callback in callbacks:
                        callback(event)
                    if event.recyclable:
                        event.recyclable = False
                        event.queued = False
                        event.triggered = False
                        event.value = None
                        free.append(event)
            except BaseException:
                # Leave the calendar resumable: drop what already fired,
                # keep the rest of the bucket for a later run().
                del bucket[:index]
                raise
            del buckets[time]
            heapq.heappop(times)
        if until is not None:
            self.now = until
        return self.now


class Store:
    """FIFO channel between processes, with optional capacity.

    ``put`` returns an event that fires when the item has been accepted
    (immediately unless the store is full); ``get`` returns an event that
    fires with the oldest item once one is available.

    A *named* store on a traced simulator reports its depth (queued
    items plus blocked putters — i.e. total backlog) after every put and
    get, giving the per-queue depth counters and highwater marks in the
    trace.
    """

    def __init__(
        self,
        simulator: Simulator,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._traced = simulator.trace is not None and name is not None
        self._items = deque()
        self._getters = deque()
        self._putters = deque()  # (event, item) pairs waiting for room

    def __len__(self) -> int:
        return len(self._items)

    def _report_depth(self) -> None:
        trace = self.simulator.trace
        if trace is not None and self.name is not None:
            trace.queue_depth(
                self.name,
                len(self._items) + len(self._putters),
                self.simulator.now,
            )

    def put(self, item: Any, transient: bool = False) -> Event:
        event = self.simulator.event(transient=transient)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
            # Getters and items are never both pending after a public
            # call (_dispatch drains), so an empty getter queue means
            # there is provably nothing to match.
            if self._getters:
                self._dispatch()
        else:
            self._putters.append((event, item))
        if self._traced:
            self._report_depth()
        return event

    def get(self, transient: bool = False) -> Event:
        event = self.simulator.event(transient=transient)
        self._getters.append(event)
        if self._items:
            self._dispatch()
        if self._traced:
            self._report_depth()
        return event

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            getter.succeed(self._items.popleft())
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed(None)
