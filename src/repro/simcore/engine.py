"""A compact discrete-event simulation engine.

The asymmetric-multicore board is simulated as a set of cooperating
processes (compression tasks, DVFS governors, the OS scheduler) advancing
a shared virtual clock. The engine is a minimal generator-based DES in
the style of SimPy:

* a :class:`Simulator` owns the event heap and the clock (microseconds);
* a :class:`Process` wraps a generator that ``yield``\\ s events — most
  commonly :meth:`Simulator.timeout` — and resumes when they fire;
* a :class:`Store` is a FIFO channel with optional capacity, used for the
  message queues between pipeline tasks.

Only the features this package needs are implemented, but they are
implemented fully: deterministic FIFO ordering for simultaneous events,
process completion events (so processes can join each other), and error
propagation out of :meth:`Simulator.run`.

Observability: a :class:`Simulator` may carry a
:class:`~repro.obs.trace.TraceRecorder` (``trace=``). Named stores then
report their queue depth on every put/get, and — when the recorder asks
for ``process_events`` — process resume/termination emits instants.
Every hook is a guarded read-only observer, so a traced simulation is
event-for-event identical to an untraced one.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Process", "Simulator", "Store"]


class Event:
    """A one-shot occurrence in virtual time.

    An event is *queued* once :meth:`succeed` places it on the heap with
    a value, and *triggered* once the simulator pops it and runs its
    callbacks. Processes waiting on an event resume with its value.
    """

    __slots__ = ("simulator", "callbacks", "queued", "triggered", "value")

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.callbacks: List[Callable[["Event"], None]] = []
        self.queued = False
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Queue the event to fire ``delay`` µs from now with ``value``."""
        if self.queued:
            raise SimulationError("event succeeded twice")
        self.queued = True
        self.value = value
        self.simulator._schedule(delay, self)
        return self


class Process(Event):
    """An active entity driven by a generator.

    The generator yields :class:`Event` instances; the process resumes
    with ``event.value`` when the event fires. A process is itself an
    event that triggers (with the generator's return value) when the
    generator finishes, so other processes can wait for it.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self,
        simulator: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(simulator)
        self._generator = generator
        self.name = name
        bootstrap = Event(simulator)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        trace = self.simulator.trace
        if trace is not None and trace.process_events:
            trace.process_event("resume", self.name, self.simulator.now)
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if trace is not None and trace.process_events:
                trace.process_event("end", self.name, self.simulator.now)
            if not self.queued:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.triggered:
            # The event already fired; resume on the next tick so that
            # event ordering stays deterministic.
            immediate = Event(self.simulator)
            immediate.callbacks.append(self._resume)
            immediate.succeed(target.value)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Event heap plus virtual clock (time unit: microseconds).

    ``trace`` is an optional :class:`~repro.obs.trace.TraceRecorder`
    that named stores and processes report to; ``None`` (the default)
    keeps every hook on its zero-cost guard path.
    """

    def __init__(self, trace=None) -> None:
        self.now = 0.0
        self.trace = trace
        self._heap: List = []
        self._sequence = 0

    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} into the past")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` microseconds from now."""
        event = Event(self)
        event.succeed(value, delay=delay)
        return event

    def event(self) -> Event:
        """A fresh unqueued event (queue it with ``succeed``)."""
        return Event(self)

    def process(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired.

        The join's value is the list of member values in the order the
        members were passed (not the order they fired), so waiters see a
        deterministic result. Already-triggered members count
        immediately; an empty list yields a join that fires on the next
        tick — both cases keep a reconfiguration barrier well-defined
        even when a window had nothing in flight.
        """
        join = Event(self)
        members = list(events)
        remaining = [len(members)]

        def _arm(member: Event) -> None:
            def _on_fire(_event: Event) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    join.succeed([m.value for m in members])

            if member.triggered:
                # Count already-fired members on the next tick so join
                # ordering stays deterministic relative to the heap.
                immediate = Event(self)
                immediate.callbacks.append(_on_fire)
                immediate.succeed(member.value)
            else:
                member.callbacks.append(_on_fire)

        if not members:
            join.succeed([])
            return join
        for member in members:
            _arm(member)
        return join

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or the clock passes
        ``until``. Returns the final clock value."""
        while self._heap:
            time, _seq, event = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            event.triggered = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self.now = until
        return self.now


class Store:
    """FIFO channel between processes, with optional capacity.

    ``put`` returns an event that fires when the item has been accepted
    (immediately unless the store is full); ``get`` returns an event that
    fires with the oldest item once one is available.

    A *named* store on a traced simulator reports its depth (queued
    items plus blocked putters — i.e. total backlog) after every put and
    get, giving the per-queue depth counters and highwater marks in the
    trace.
    """

    def __init__(
        self,
        simulator: Simulator,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List = []  # (event, item) pairs waiting for room

    def __len__(self) -> int:
        return len(self._items)

    def _report_depth(self) -> None:
        trace = self.simulator.trace
        if trace is not None and self.name is not None:
            trace.queue_depth(
                self.name,
                len(self._items) + len(self._putters),
                self.simulator.now,
            )

    def put(self, item: Any) -> Event:
        event = Event(self.simulator)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
            self._dispatch()
        else:
            self._putters.append((event, item))
        self._report_depth()
        return event

    def get(self) -> Event:
        event = Event(self.simulator)
        self._getters.append(event)
        self._dispatch()
        self._report_depth()
        return event

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.pop(0)
            getter.succeed(self._items.pop(0))
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                putter, item = self._putters.pop(0)
                self._items.append(item)
                putter.succeed(None)
