"""DVFS governors (paper §VII-C).

Governors set per-core frequencies between batches based on the observed
utilization of the previous batch. Every frequency change costs a stall
and a transition energy — this overhead is why the paper finds that
"on-demand" (which re-targets aggressively every sample) performs *worse*
than running flat out, while "conservative" (one step at a time) saves
some energy at the price of latency-constraint violations.

* :class:`StaticGovernor` — fixed frequency map; the paper's "default"
  pins every core at its maximum (and Fig 15's static sweep uses other
  fixed maps).
* :class:`ConservativeGovernor` — steps one frequency level toward the
  target utilization band per decision.
* :class:`OndemandGovernor` — jumps straight to the maximum when above
  the up-threshold and straight down to the proportional level when
  below it.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.simcore.boards import BoardSpec

__all__ = [
    "Governor",
    "StaticGovernor",
    "ConservativeGovernor",
    "OndemandGovernor",
    "FREQUENCY_SWITCH_STALL_US",
    "FREQUENCY_SWITCH_ENERGY_UJ",
    "get_governor",
]

# Cost of one frequency transition: PLL relock stall plus regulator energy.
FREQUENCY_SWITCH_STALL_US = 150.0
FREQUENCY_SWITCH_ENERGY_UJ = 45.0


class Governor(abc.ABC):
    """Per-core frequency policy driven by utilization feedback."""

    name: str = ""
    #: fraction of the sampling periods in which this governor, once it
    #: decides to move, keeps re-switching (on-demand hunts around the
    #: target level; conservative settles after its single step)
    oscillation_factor: float = 0.05

    def __init__(self, board: BoardSpec) -> None:
        self.board = board
        self.frequencies: Dict[int, float] = {
            core.core_id: core.max_frequency_mhz for core in board.cores
        }
        self.switch_count = 0
        self._trace = None
        self._clock = None

    def attach_trace(self, trace, clock) -> None:
        """Report frequency transitions to a recorder; ``clock`` is a
        zero-argument callable yielding the simulated time (µs). Passive:
        attaching a trace never changes a decision."""
        self._trace = trace
        self._clock = clock

    def frequency_of(self, core_id: int) -> float:
        return self.frequencies[core_id]

    def observe(self, utilization: Mapping[int, float]) -> Dict[int, float]:
        """Feed per-core utilization in [0, 1]; returns the new frequency
        map and counts transitions."""
        changes = 0
        for core in self.board.cores:
            current = self.frequencies[core.core_id]
            target = self._decide(
                core.core_id,
                current,
                utilization.get(core.core_id, 0.0),
                core.frequency_levels_mhz,
            )
            if target != current:
                self.frequencies[core.core_id] = target
                changes += 1
                if self._trace is not None:
                    self._trace.dvfs_transition(
                        core.core_id,
                        current,
                        target,
                        self._clock() if self._clock is not None else 0.0,
                    )
        self.switch_count += changes
        return dict(self.frequencies)

    def transition_cost(self, changes: int = 1):
        """(stall µs, energy µJ) of ``changes`` frequency transitions."""
        return (
            FREQUENCY_SWITCH_STALL_US * changes,
            FREQUENCY_SWITCH_ENERGY_UJ * changes,
        )

    @abc.abstractmethod
    def _decide(
        self,
        core_id: int,
        current_mhz: float,
        utilization: float,
        levels,
    ) -> float:
        """Return the next frequency for one core."""


class StaticGovernor(Governor):
    """Fixed frequencies; the default pins every core at its maximum."""

    name = "default"

    def __init__(
        self, board: BoardSpec, frequency_map: Optional[Mapping[int, float]] = None
    ) -> None:
        super().__init__(board)
        if frequency_map:
            for core_id, freq in frequency_map.items():
                core = board.core_by_id.get(core_id)
                if core is None:
                    raise ConfigurationError(f"unknown core {core_id}")
                if freq not in core.frequency_levels_mhz:
                    raise ConfigurationError(
                        f"{freq} MHz is not a level of core {core_id}: "
                        f"{core.frequency_levels_mhz}"
                    )
                self.frequencies[core_id] = freq

    def _decide(self, core_id, current_mhz, utilization, levels) -> float:
        return current_mhz


class ConservativeGovernor(Governor):
    """Step one level up/down toward a utilization band."""

    name = "conservative"

    oscillation_factor = 0.02

    def __init__(
        self,
        board: BoardSpec,
        up_threshold: float = 0.85,
        down_threshold: float = 0.65,
    ) -> None:
        super().__init__(board)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError("need 0 < down_threshold < up_threshold <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def _decide(self, core_id, current_mhz, utilization, levels) -> float:
        index = levels.index(current_mhz)
        if utilization > self.up_threshold and index + 1 < len(levels):
            return levels[index + 1]
        if utilization < self.down_threshold and index > 0:
            return levels[index - 1]
        return current_mhz


class OndemandGovernor(Governor):
    """Jump to max above the threshold, drop proportionally below it."""

    name = "ondemand"
    oscillation_factor = 0.6

    def __init__(self, board: BoardSpec, up_threshold: float = 0.80) -> None:
        super().__init__(board)
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must be in (0, 1]")
        self.up_threshold = up_threshold

    def _decide(self, core_id, current_mhz, utilization, levels) -> float:
        if utilization > self.up_threshold:
            return levels[-1]
        # Lowest level that would serve the load at ~up_threshold.
        needed = levels[-1] * utilization / self.up_threshold
        for level in levels:
            if level >= needed:
                return level
        return levels[-1]


_GOVERNORS = {
    StaticGovernor.name: StaticGovernor,
    ConservativeGovernor.name: ConservativeGovernor,
    OndemandGovernor.name: OndemandGovernor,
}


def get_governor(name: str, board: BoardSpec, **options) -> Governor:
    """Instantiate a governor by cpufreq-style name."""
    try:
        governor_class = _GOVERNORS[name]
    except KeyError:
        known = ", ".join(sorted(_GOVERNORS))
        raise ConfigurationError(f"unknown governor {name!r}; known: {known}")
    return governor_class(board, **options)
