"""Board definitions — most importantly the rk3399 of the paper.

A :class:`BoardSpec` bundles core specs, cluster topology, the
interconnect cost table and board-level constants (uncore power,
context-switch cost, replication overheads). :func:`rk3399` builds the
paper's evaluation platform: a Radxa RockPi 4a with four in-order A53
little cores (cluster 0) and two out-of-order A72 big cores (cluster 1).

Calibration: the roofline parameters are chosen so the paper's published
anchors land close to their reported values at maximum frequency —
Table IV's per-task latencies/energies for tcomp32-Rovio (t0: κ≈320,
~15 µs/B big vs ~32 µs/B little; t1: κ≈102, energy 3× cheaper on
little), and Table V's optimal-plan rows. See DESIGN.md for the full
derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.simcore.hardware import ClusterSpec, CoreSpec, CoreType, PiecewiseRoofline
from repro.simcore.interconnect import InterconnectSpec, Path, PathCost

__all__ = ["BoardSpec", "rk3399", "jetson_tx2_like"]


@dataclass(frozen=True)
class BoardSpec:
    """Everything static about a simulated board."""

    name: str
    cores: Tuple[CoreSpec, ...]
    clusters: Tuple[ClusterSpec, ...]
    interconnect: InterconnectSpec
    #: constant power of uncore + DRAM, W
    uncore_power_w: float
    #: cost of one OS context switch, in (virtual) instructions
    context_switch_instructions: float
    #: per-extra-replica pipeline-latency overhead (cache thrashing)
    replication_latency_overhead: float
    #: per-extra-replica energy overhead
    replication_energy_overhead: float
    #: lookup tables built in __post_init__
    core_by_id: Mapping[int, CoreSpec] = field(default=None, repr=False)
    cluster_by_id: Mapping[int, ClusterSpec] = field(default=None, repr=False)
    core_cluster: Mapping[int, int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.cores:
            raise ConfigurationError("a board needs at least one core")
        core_by_id = {core.core_id: core for core in self.cores}
        if len(core_by_id) != len(self.cores):
            raise ConfigurationError("duplicate core ids on board")
        cluster_by_id = {c.cluster_id: c for c in self.clusters}
        core_cluster: Dict[int, int] = {}
        for cluster in self.clusters:
            for core_id in cluster.core_ids:
                if core_id not in core_by_id:
                    raise ConfigurationError(
                        f"cluster {cluster.cluster_id} references unknown "
                        f"core {core_id}"
                    )
                core_cluster[core_id] = cluster.cluster_id
        if set(core_cluster) != set(core_by_id):
            raise ConfigurationError("every core must belong to a cluster")
        object.__setattr__(self, "core_by_id", core_by_id)
        object.__setattr__(self, "cluster_by_id", cluster_by_id)
        object.__setattr__(self, "core_cluster", core_cluster)

    # -- convenience accessors -------------------------------------------

    @property
    def core_ids(self) -> Tuple[int, ...]:
        return tuple(core.core_id for core in self.cores)

    def cores_of_type(self, core_type: CoreType) -> Tuple[CoreSpec, ...]:
        return tuple(c for c in self.cores if c.core_type is core_type)

    @property
    def big_core_ids(self) -> Tuple[int, ...]:
        return tuple(c.core_id for c in self.cores_of_type(CoreType.BIG))

    @property
    def little_core_ids(self) -> Tuple[int, ...]:
        return tuple(c.core_id for c in self.cores_of_type(CoreType.LITTLE))

    def path_between(self, from_core: int, to_core: int) -> Path:
        return self.interconnect.classify(
            from_core, to_core, self.cluster_by_id, self.core_cluster
        )

    def with_interconnect(self, interconnect: InterconnectSpec) -> "BoardSpec":
        """Copy of this board with a different interconnect cost table."""
        return BoardSpec(
            name=self.name,
            cores=self.cores,
            clusters=self.clusters,
            interconnect=interconnect,
            uncore_power_w=self.uncore_power_w,
            context_switch_instructions=self.context_switch_instructions,
            replication_latency_overhead=self.replication_latency_overhead,
            replication_energy_overhead=self.replication_energy_overhead,
        )


# --- rk3399 calibration -----------------------------------------------------

_LITTLE_FREQS = (408.0, 600.0, 816.0, 1008.0, 1200.0, 1416.0)
_BIG_FREQS = (408.0, 600.0, 816.0, 1008.0, 1200.0, 1416.0, 1608.0, 1800.0)

# η in instructions/µs; four regions: below κ_L1, κ_L1..κ_L2 (the little
# core's in-order L1-I stall dip), κ_L2..κ_roof, then the roof (= C_j).
_BIG_ETA = PiecewiseRoofline(
    breakpoints=(30.0, 100.0, 340.0),
    slopes=(0.11, 0.073, 0.049),
    intercepts=(0.5, 1.61, 4.0),
    roof=20.66,
)
_LITTLE_ETA = PiecewiseRoofline(
    breakpoints=(30.0, 70.0, 330.0),
    slopes=(0.18, -0.02, 0.0158),
    intercepts=(0.3, 6.3, 3.794),
    roof=9.0,
)
# ζ in instructions/µJ. Big cores only approach the little cores'
# efficiency at very high κ; little cores roof early, and their κ 30..70
# dip wastes energy on stalls.
_BIG_ZETA = PiecewiseRoofline(
    breakpoints=(50.0, 380.0),
    slopes=(3.2, 3.02),
    intercepts=(30.0, 39.0),
    roof=1186.6,
)
_LITTLE_ZETA = PiecewiseRoofline(
    breakpoints=(30.0, 70.0, 330.0),
    slopes=(38.0, -6.0, 1.5),
    intercepts=(10.0, 1330.0, 805.0),
    roof=1300.0,
)

_BIG_STATIC_POWER_W = 0.0002
_LITTLE_STATIC_POWER_W = 0.00005
_BIG_BUSY_FLOOR_W = 0.005
_LITTLE_BUSY_FLOOR_W = 0.0015

# Task-level message-passing unit costs (µs per transferred byte) and
# per-message overheads; c0:c1:c2 keeps the raw table's ordering with the
# little→big direction priced highest (extra hand-shaking cycles).
_INTERCONNECT = InterconnectSpec(
    costs={
        Path.C0: PathCost(
            unit_cost_us_per_byte=1.6,
            message_overhead_us=30.0,
            raw_bandwidth_gbps=2.7,
            raw_latency_ns=70.4,
            message_energy_uj=12.0,
        ),
        Path.C1: PathCost(
            unit_cost_us_per_byte=2.2,
            message_overhead_us=60.0,
            raw_bandwidth_gbps=0.7,
            raw_latency_ns=142.4,
            message_energy_uj=25.0,
        ),
        Path.C2: PathCost(
            unit_cost_us_per_byte=7.0,
            message_overhead_us=180.0,
            raw_bandwidth_gbps=0.4,
            raw_latency_ns=420.8,
            message_energy_uj=60.0,
        ),
    }
)


def rk3399() -> BoardSpec:
    """The paper's evaluation board: rk3399 on a Radxa RockPi 4a."""
    cores = []
    for core_id in range(4):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.LITTLE,
                cluster_id=0,
                model="Cortex-A53",
                max_frequency_mhz=1416.0,
                frequency_levels_mhz=_LITTLE_FREQS,
                eta=_LITTLE_ETA,
                zeta=_LITTLE_ZETA,
                static_power_w=_LITTLE_STATIC_POWER_W,
                busy_floor_power_w=_LITTLE_BUSY_FLOOR_W,
            )
        )
    for core_id in (4, 5):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.BIG,
                cluster_id=1,
                model="Cortex-A72",
                max_frequency_mhz=1800.0,
                frequency_levels_mhz=_BIG_FREQS,
                eta=_BIG_ETA,
                zeta=_BIG_ZETA,
                static_power_w=_BIG_STATIC_POWER_W,
                busy_floor_power_w=_BIG_BUSY_FLOOR_W,
            )
        )
    clusters = (
        ClusterSpec(cluster_id=0, core_type=CoreType.LITTLE, core_ids=(0, 1, 2, 3)),
        ClusterSpec(cluster_id=1, core_type=CoreType.BIG, core_ids=(4, 5)),
    )
    return BoardSpec(
        name="rk3399 (Radxa RockPi 4a)",
        cores=tuple(cores),
        clusters=clusters,
        interconnect=_INTERCONNECT,
        uncore_power_w=0.0002,
        context_switch_instructions=330.0,
        replication_latency_overhead=0.07,
        replication_energy_overhead=0.27,
    )


# --- Jetson-TX2-like board (paper future work) -------------------------------
#
# The paper's conclusion plans to exploit CStream "on other hardware
# architectures such as Intel Agilex and Nvidia Jetson". This board
# models a Jetson-TX2-class SoC: four Cortex-A57 cores and two Denver2
# cores. Both core types are out-of-order, so neither η curve has the
# A53's in-order stall dip — the asymmetry is milder (Denver is ~1.6x
# faster, A57 ~1.8x more efficient), which shrinks but does not remove
# the gains of asymmetry-aware scheduling.

_A57_FREQS = (499.0, 806.0, 1113.0, 1420.0, 1728.0, 2035.0)
_DENVER_FREQS = (499.0, 806.0, 1113.0, 1420.0, 1728.0, 2035.0)

_A57_ETA = PiecewiseRoofline(
    breakpoints=(40.0, 120.0, 360.0),
    slopes=(0.16, 0.075, 0.035),
    intercepts=(0.8, 4.2, 9.0),
    roof=21.6,
)
_DENVER_ETA = PiecewiseRoofline(
    breakpoints=(40.0, 120.0, 380.0),
    slopes=(0.18, 0.11, 0.065),
    intercepts=(1.0, 3.8, 9.2),
    roof=33.9,
)
_A57_ZETA = PiecewiseRoofline(
    breakpoints=(60.0, 360.0),
    slopes=(14.0, 2.2),
    intercepts=(60.0, 768.0),
    roof=1560.0,
)
_DENVER_ZETA = PiecewiseRoofline(
    breakpoints=(60.0, 380.0),
    slopes=(6.0, 1.9),
    intercepts=(40.0, 286.0),
    roof=1008.0,
)

_JETSON_INTERCONNECT = InterconnectSpec(
    costs={
        # A coherent fabric: inter-cluster traffic is cheaper than the
        # rk3399's CCI500 and the direction asymmetry is milder.
        Path.C0: PathCost(
            unit_cost_us_per_byte=1.3,
            message_overhead_us=24.0,
            raw_bandwidth_gbps=3.4,
            raw_latency_ns=58.0,
            message_energy_uj=10.0,
        ),
        Path.C1: PathCost(
            unit_cost_us_per_byte=1.8,
            message_overhead_us=45.0,
            raw_bandwidth_gbps=1.2,
            raw_latency_ns=110.0,
            message_energy_uj=18.0,
        ),
        Path.C2: PathCost(
            unit_cost_us_per_byte=3.6,
            message_overhead_us=95.0,
            raw_bandwidth_gbps=0.8,
            raw_latency_ns=240.0,
            message_energy_uj=32.0,
        ),
    }
)


def jetson_tx2_like() -> BoardSpec:
    """A Jetson-TX2-class board: 4x Cortex-A57 + 2x Denver2."""
    cores = []
    for core_id in range(4):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.LITTLE,
                cluster_id=0,
                model="Cortex-A57",
                max_frequency_mhz=2035.0,
                frequency_levels_mhz=_A57_FREQS,
                eta=_A57_ETA,
                zeta=_A57_ZETA,
                static_power_w=0.0001,
                busy_floor_power_w=0.003,
            )
        )
    for core_id in (4, 5):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.BIG,
                cluster_id=1,
                model="Denver2",
                max_frequency_mhz=2035.0,
                frequency_levels_mhz=_DENVER_FREQS,
                eta=_DENVER_ETA,
                zeta=_DENVER_ZETA,
                static_power_w=0.0003,
                busy_floor_power_w=0.008,
            )
        )
    clusters = (
        ClusterSpec(cluster_id=0, core_type=CoreType.LITTLE, core_ids=(0, 1, 2, 3)),
        ClusterSpec(cluster_id=1, core_type=CoreType.BIG, core_ids=(4, 5)),
    )
    return BoardSpec(
        name="Jetson-TX2-like (4x A57 + 2x Denver2)",
        cores=tuple(cores),
        clusters=clusters,
        interconnect=_JETSON_INTERCONNECT,
        uncore_power_w=0.0003,
        context_switch_instructions=330.0,
        replication_latency_overhead=0.07,
        replication_energy_overhead=0.27,
    )
