"""Asymmetric multicore hardware model: cores, clusters, rooflines.

The simulator's ground truth for computation is a pair of four-segment
piecewise-linear roofline curves per core type (paper Fig 3 and Eq 5):

* ``eta(κ)`` — instructions per microsecond as a function of a task's
  operational intensity κ (instructions per memory access);
* ``zeta(κ)`` — instructions per microjoule.

Both curves grow with κ until a roof; on the in-order little cores the
second segment (κ between roughly 30 and 70) *decreases* — the paper
attributes this to L1-I misses stalling the in-order pipeline — which is
the effect that makes little cores a bad home for mid-κ tasks (Fig 13).

Frequency scaling: η scales sub-linearly with frequency (memory-bound
fractions don't speed up) and dynamic power scales super-linearly
(voltage tracks frequency), while static power is constant — so the
energy-per-instruction optimum is *not* at the lowest frequency
(paper Fig 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "CoreType",
    "PiecewiseRoofline",
    "CoreSpec",
    "ClusterSpec",
    "FREQUENCY_EXPONENT_PERFORMANCE",
    "FREQUENCY_EXPONENT_POWER",
    "replication_factor",
]

# Cache-thrashing cost of replication grows sublinearly: the first extra
# replica doubles the working sets, later ones mostly re-partition them.
_REPLICATION_EXPONENT = 0.75


def replication_factor(overhead_per_replica: float, replicas: int) -> float:
    """Multiplier ``1 + overhead·(r-1)^0.75`` for r-way replication.

    At r=2 this reduces to ``1 + overhead`` — the paper's Table IV
    anchor (t_re×2 costs ~27 % more energy than t_all).
    """
    if replicas < 1:
        raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
    return 1.0 + overhead_per_replica * (replicas - 1) ** _REPLICATION_EXPONENT

# η(f) ∝ (f/f_max)^0.9: compute-bound work scales with f, the memory-bound
# remainder does not.
FREQUENCY_EXPONENT_PERFORMANCE = 0.9
# Dynamic power ∝ f·V² with V roughly linear in f over the DVFS range.
FREQUENCY_EXPONENT_POWER = 2.7


class CoreType(enum.Enum):
    """The two core classes of a big.LITTLE processor."""

    LITTLE = "little"
    BIG = "big"


@dataclass(frozen=True)
class PiecewiseRoofline:
    """A piecewise-linear curve ``value(κ) = a_s·κ + b_s`` with a roof.

    ``breakpoints`` are the κ upper bounds of each segment;
    ``slopes``/``intercepts`` are the per-segment line parameters. Above
    the last breakpoint the curve is flat at ``roof``. This is exactly
    the functional form of the paper's Eq 5, so the cost model's
    piecewise-linear fit can recover it.
    """

    breakpoints: Tuple[float, ...]
    slopes: Tuple[float, ...]
    intercepts: Tuple[float, ...]
    roof: float

    def __post_init__(self) -> None:
        if not (len(self.breakpoints) == len(self.slopes) == len(self.intercepts)):
            raise ConfigurationError("roofline segment arrays must align")
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ConfigurationError("roofline breakpoints must be increasing")
        if self.roof <= 0:
            raise ConfigurationError("roofline roof must be positive")

    def value(self, kappa: float) -> float:
        """Evaluate the curve at operational intensity ``kappa``."""
        if kappa < 0:
            raise ValueError(f"operational intensity must be >= 0, got {kappa}")
        for boundary, slope, intercept in zip(
            self.breakpoints, self.slopes, self.intercepts
        ):
            if kappa <= boundary:
                return max(slope * kappa + intercept, 1e-9)
        return self.roof

    def sample(self, kappas: Sequence[float]) -> Tuple[float, ...]:
        """Evaluate the curve at several κ values (profiling helper)."""
        return tuple(self.value(k) for k in kappas)


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one core.

    ``eta`` and ``zeta`` describe the core at ``max_frequency_mhz``;
    :meth:`eta_at`/:meth:`power_at` apply DVFS scaling.
    """

    core_id: int
    core_type: CoreType
    cluster_id: int
    model: str
    max_frequency_mhz: float
    frequency_levels_mhz: Tuple[float, ...]
    eta: PiecewiseRoofline
    zeta: PiecewiseRoofline
    #: leakage drawn even when the core idles (clock-gated), W
    static_power_w: float
    #: non-frequency-scaling share of busy power (un-gated fabric), W
    busy_floor_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.max_frequency_mhz <= 0:
            raise ConfigurationError("max frequency must be positive")
        if not self.frequency_levels_mhz:
            raise ConfigurationError("a core needs at least one frequency level")
        if max(self.frequency_levels_mhz) != self.max_frequency_mhz:
            raise ConfigurationError(
                "max_frequency_mhz must be the top frequency level"
            )
        if self.static_power_w < 0:
            raise ConfigurationError("static power must be non-negative")
        # Memo caches for the hot curve lookups, keyed (κ, frequency).
        # A simulated pipeline evaluates the same handful of per-stage κ
        # values hundreds of thousands of times, each walking a
        # piecewise curve and computing a float pow — caching returns
        # the exact float the first computation produced, so simulated
        # numbers are bit-identical. The caches are plain attributes
        # (not dataclass fields) attached past the frozen guard: repr,
        # eq, hash, and the board fingerprint are unaffected.
        object.__setattr__(self, "_eta_cache", {})
        object.__setattr__(self, "_power_cache", {})

    # -- computation ------------------------------------------------------

    def eta_at(self, kappa: float, frequency_mhz: float = None) -> float:
        """Instructions per µs at intensity κ and the given frequency."""
        key = (kappa, frequency_mhz)
        cached = self._eta_cache.get(key)
        if cached is not None:
            return cached
        base = self.eta.value(kappa)
        scale = self._frequency_fraction(frequency_mhz)
        result = base * scale ** FREQUENCY_EXPONENT_PERFORMANCE
        if len(self._eta_cache) >= 4096:
            self._eta_cache.clear()
        self._eta_cache[key] = result
        return result

    def capacity(self, frequency_mhz: float = None) -> float:
        """Maximum instructions per µs (the paper's C_j): the η roof."""
        scale = self._frequency_fraction(frequency_mhz)
        return self.eta.roof * scale ** FREQUENCY_EXPONENT_PERFORMANCE

    # -- energy -----------------------------------------------------------

    def busy_power_w(self, kappa: float, frequency_mhz: float = None) -> float:
        """Total power (W = µJ/µs) while running work of intensity κ.

        At maximum frequency this equals ``η(κ)/ζ(κ)`` exactly (the
        roofline curves are the ground truth); at lower frequencies only
        the dynamic share scales down, which is why energy per
        instruction is *not* minimized at the lowest frequency (Fig 15).
        """
        key = (kappa, frequency_mhz)
        cached = self._power_cache.get(key)
        if cached is not None:
            return cached
        total_max = self.eta.value(kappa) / self.zeta.value(kappa)
        dynamic_max = max(total_max - self.busy_floor_power_w, 0.0)
        scale = self._frequency_fraction(frequency_mhz)
        result = (
            dynamic_max * scale ** FREQUENCY_EXPONENT_POWER
            + min(self.busy_floor_power_w, total_max)
        )
        if len(self._power_cache) >= 4096:
            self._power_cache.clear()
        self._power_cache[key] = result
        return result

    def zeta_at(self, kappa: float, frequency_mhz: float = None) -> float:
        """Effective instructions per µJ at the given frequency."""
        return self.eta_at(kappa, frequency_mhz) / self.busy_power_w(
            kappa, frequency_mhz
        )

    def _frequency_fraction(self, frequency_mhz: float) -> float:
        if frequency_mhz is None:
            return 1.0
        if frequency_mhz <= 0:
            raise ConfigurationError("frequency must be positive")
        return min(frequency_mhz / self.max_frequency_mhz, 1.0)

    @property
    def is_big(self) -> bool:
        return self.core_type is CoreType.BIG


@dataclass(frozen=True)
class ClusterSpec:
    """A group of identical cores sharing an L2 and a cluster port."""

    cluster_id: int
    core_type: CoreType
    core_ids: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError("a cluster needs at least one core")
