"""Cross-core communication model (paper Table II and Eq 7).

Three path classes connect tasks on an asymmetric multicore:

* ``c0`` — intra-cluster, through the shared L2;
* ``c1`` — inter-cluster big→little, through the CCI port;
* ``c2`` — inter-cluster little→big; *more* expensive than c1 because of
  the extra synchronization and hand-shaking cycles the paper describes —
  the direction asymmetry CStream's scheduler exploits.

Two cost surfaces live here:

* **raw link numbers** (bandwidth GB/s, per-access latency ns) as a
  STREAM-style probe would measure them — regenerating Table II;
* **task-level unit costs** (µs per transferred byte plus a per-message
  overhead ω) — the cost the executor charges when one pipeline task
  fetches a batch from its upstream, i.e. the ``L^comm`` and ``ω`` of
  Eq 7. These are calibrated at the paper's µs/byte operating scale while
  preserving the raw paths' latency ordering (c0 < c1 < c2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.simcore.hardware import ClusterSpec, CoreType

__all__ = ["Path", "PathCost", "InterconnectSpec", "stream_probe"]

CACHE_LINE_BYTES = 64


class Path(enum.Enum):
    """Communication path classes between two cores."""

    LOCAL = "local"          # same core: no transfer
    C0 = "c0"                # intra-cluster
    C1 = "c1"                # inter-cluster, big -> little
    C2 = "c2"                # inter-cluster, little -> big


@dataclass(frozen=True)
class PathCost:
    """Costs of one path class.

    ``unit_cost_us_per_byte`` is the task-level message-passing cost per
    transferred byte; ``message_overhead_us`` is the per-transfer ω of
    Eq 7. ``raw_bandwidth_gbps``/``raw_latency_ns`` are the link-level
    numbers a STREAM probe reports (Table II).
    """

    unit_cost_us_per_byte: float
    message_overhead_us: float
    raw_bandwidth_gbps: float
    raw_latency_ns: float
    #: energy of one message's queue round-trip (interconnect + DRAM)
    message_energy_uj: float = 0.0

    def __post_init__(self) -> None:
        if min(
            self.unit_cost_us_per_byte,
            self.message_overhead_us,
            self.raw_bandwidth_gbps,
            self.raw_latency_ns,
            self.message_energy_uj,
        ) < 0:
            raise ConfigurationError("path costs must be non-negative")


@dataclass(frozen=True)
class InterconnectSpec:
    """The board's communication cost table."""

    costs: Mapping[Path, PathCost]

    def __post_init__(self) -> None:
        required = {Path.C0, Path.C1, Path.C2}
        missing = required - set(self.costs)
        if missing:
            raise ConfigurationError(f"interconnect spec missing paths {missing}")

    def classify(
        self,
        from_core: int,
        to_core: int,
        clusters: Mapping[int, ClusterSpec],
        core_cluster: Mapping[int, int],
    ) -> Path:
        """Which path a transfer from ``from_core`` to ``to_core`` takes."""
        if from_core == to_core:
            return Path.LOCAL
        from_cluster = core_cluster[from_core]
        to_cluster = core_cluster[to_core]
        if from_cluster == to_cluster:
            return Path.C0
        if clusters[from_cluster].core_type is CoreType.BIG:
            return Path.C1
        return Path.C2

    def transfer_latency_us(self, path: Path, transfer_bytes: float) -> float:
        """Latency of moving ``transfer_bytes`` over ``path`` (Eq 7)."""
        if path is Path.LOCAL:
            return 0.0
        cost = self.costs[path]
        return (
            transfer_bytes * cost.unit_cost_us_per_byte
            + cost.message_overhead_us
        )

    def unit_cost(self, path: Path) -> float:
        """µs per transferred byte over ``path`` (0 for LOCAL)."""
        if path is Path.LOCAL:
            return 0.0
        return self.costs[path].unit_cost_us_per_byte

    def message_overhead(self, path: Path) -> float:
        """Per-message ω over ``path`` (0 for LOCAL)."""
        if path is Path.LOCAL:
            return 0.0
        return self.costs[path].message_overhead_us

    def message_energy(self, path: Path) -> float:
        """Per-message transfer energy in µJ (0 for LOCAL)."""
        if path is Path.LOCAL:
            return 0.0
        return self.costs[path].message_energy_uj

    def degraded(self, path: Path, factor: float) -> "InterconnectSpec":
        """A copy with one path class's bandwidth degraded by ``factor``.

        Per-byte unit cost, per-message overhead ω, raw latency and
        message energy scale up by ``factor``; raw bandwidth scales down
        — the cost surface a contended or retraining link presents.
        Used by the fault subsystem's
        :class:`~repro.faults.model.InterconnectDegradation` event.
        """
        if path is Path.LOCAL:
            raise ConfigurationError("cannot degrade the LOCAL pseudo-path")
        if factor < 1.0:
            raise ConfigurationError(
                "degradation factor must be >= 1 (a speed-up is not a fault)"
            )
        base = self.costs[path]
        costs: Dict[Path, PathCost] = dict(self.costs)
        costs[path] = PathCost(
            unit_cost_us_per_byte=base.unit_cost_us_per_byte * factor,
            message_overhead_us=base.message_overhead_us * factor,
            raw_bandwidth_gbps=base.raw_bandwidth_gbps / factor,
            raw_latency_ns=base.raw_latency_ns * factor,
            message_energy_uj=base.message_energy_uj * factor,
        )
        return InterconnectSpec(costs=costs)

    def symmetrized(self) -> "InterconnectSpec":
        """A copy that prices both inter-cluster directions like ``c1``.

        This is the *asymmetry-unaware* view used by the ``+asy-comp.``
        ablation (§VII-D): it models asymmetric computation but treats
        ``L_comm(j', j)`` as equal to ``L_comm(j, j')``.
        """
        costs: Dict[Path, PathCost] = dict(self.costs)
        costs[Path.C2] = costs[Path.C1]
        return InterconnectSpec(costs=costs)


def stream_probe(
    spec: InterconnectSpec,
    path: Path,
    probe_bytes: int = 1 << 20,
    seed: int = 0,
) -> Dict[str, float]:
    """STREAM-benchmark-style measurement of one path's raw numbers.

    Emulates pinning a producer thread on one side and a consumer on the
    other, then timing cache-line sized transfers. Measurement noise is a
    small seeded perturbation, like a real benchmark run.
    """
    if path is Path.LOCAL:
        raise ConfigurationError("cannot probe the LOCAL pseudo-path")
    if probe_bytes <= 0:
        raise ConfigurationError("probe_bytes must be positive")
    cost = spec.costs[path]
    rng = np.random.default_rng(seed)
    noise = rng.normal(1.0, 0.01, size=2)
    lines = probe_bytes / CACHE_LINE_BYTES
    total_ns = lines * cost.raw_latency_ns
    measured_bandwidth = (
        probe_bytes / (probe_bytes / (cost.raw_bandwidth_gbps * 1e9)) / 1e9
    )
    return {
        "bandwidth_gbps": measured_bandwidth * float(noise[0]),
        "latency_ns": cost.raw_latency_ns * float(noise[1]),
        "probe_bytes": float(probe_bytes),
        "total_ns": total_ns,
    }
