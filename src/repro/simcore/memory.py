"""Cache-aware roofline derivation (the substrate behind Fig 3's shape).

The boards ship *calibrated* η/ζ curves; this module explains and
generates such curves from first(ish) principles, in the spirit of the
cache-aware roofline model the paper builds on (Ilic et al., cited as
[65]): a core's instruction throughput at operational intensity κ is the
minimum of

* its issue bound — peak IPC × frequency — and
* its memory bound — κ instructions per access × the access rate the
  cache hierarchy sustains at that κ's locality.

Locality is a stylized function of κ: low-κ code streams through data
(L1-resident working sets per instruction window are large → misses),
high-κ code reuses registers. For an **in-order** core the model adds
the L1-I stall band the paper observes on the A53: in a mid-κ window the
instruction footprint of the loop body outgrows the L1-I while the
pipeline cannot hide the refill, carving the η dip between κ≈30 and
κ≈70. Out-of-order cores overlap those refills, so the band vanishes —
exactly the difference between the rk3399's clusters and the
Jetson-class board's.

:func:`derive_roofline` samples this model and fits the paper's
four-segment piecewise-linear form, so new boards can be generated from
cache parameters instead of hand-tuned curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.roofline import FittedPiecewise, fit_piecewise
from repro.errors import ConfigurationError

__all__ = ["CacheHierarchy", "CoreMicroarchitecture", "derive_roofline"]


@dataclass(frozen=True)
class CacheHierarchy:
    """Capacities and access costs of one core's cache hierarchy."""

    l1d_kb: float = 32.0
    l1i_kb: float = 32.0
    l2_kb: float = 512.0
    line_bytes: int = 64
    l1_cycles: float = 4.0
    l2_cycles: float = 21.0
    dram_cycles: float = 130.0

    def __post_init__(self) -> None:
        if min(self.l1d_kb, self.l1i_kb, self.l2_kb) <= 0:
            raise ConfigurationError("cache capacities must be positive")
        if not self.l1_cycles < self.l2_cycles < self.dram_cycles:
            raise ConfigurationError(
                "access costs must increase down the hierarchy"
            )


@dataclass(frozen=True)
class CoreMicroarchitecture:
    """The core-side parameters of the roofline derivation."""

    frequency_mhz: float
    peak_ipc: float
    in_order: bool
    hierarchy: CacheHierarchy = CacheHierarchy()
    #: κ below which data no longer fits L1 (streaming access)
    l1_pressure_kappa: float = 30.0
    #: κ below which data spills L2
    l2_pressure_kappa: float = 70.0
    #: bytes of instruction footprint per unit κ (loop-body growth)
    instruction_bytes_per_kappa: float = 700.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0 or self.peak_ipc <= 0:
            raise ConfigurationError("frequency and IPC must be positive")


def _cycles_per_access(core: CoreMicroarchitecture, kappa: float) -> float:
    """Mean data-access cost at intensity κ (stylized locality)."""
    hierarchy = core.hierarchy
    if kappa >= core.l2_pressure_kappa:
        # Reuse-heavy code: mostly L1 hits.
        return hierarchy.l1_cycles
    if kappa >= core.l1_pressure_kappa:
        # L1 misses matter; L2 absorbs them.
        span = core.l2_pressure_kappa - core.l1_pressure_kappa
        miss = (core.l2_pressure_kappa - kappa) / span
        return hierarchy.l1_cycles + miss * (
            hierarchy.l2_cycles - hierarchy.l1_cycles
        )
    # Streaming: L2 misses reach DRAM, amortized per line.
    span = max(core.l1_pressure_kappa, 1e-9)
    miss = max(0.0, (core.l1_pressure_kappa - kappa) / span)
    return hierarchy.l2_cycles + miss * (
        hierarchy.dram_cycles - hierarchy.l2_cycles
    ) / (hierarchy.line_bytes / 8.0)


def _instruction_stall_factor(
    core: CoreMicroarchitecture, kappa: float
) -> float:
    """In-order L1-I stall multiplier (≥ 1) in the mid-κ band."""
    if not core.in_order:
        return 1.0
    footprint_kb = kappa * core.instruction_bytes_per_kappa / 1024.0
    capacity = core.hierarchy.l1i_kb
    if footprint_kb <= capacity:
        return 1.0
    # Footprint past the L1-I: each extra KB stalls the in-order
    # pipeline, saturating once the hot loop cycles entirely through L2.
    overflow = (footprint_kb - capacity) / capacity
    return 1.0 + min(overflow, 1.0) * 0.45


def instructions_per_microsecond(
    core: CoreMicroarchitecture, kappa: float
) -> float:
    """The cache-aware roofline: min(issue bound, memory bound)."""
    if kappa <= 0:
        raise ValueError("operational intensity must be positive")
    cycles_per_us = core.frequency_mhz  # MHz == cycles/µs
    issue_bound = core.peak_ipc * cycles_per_us
    memory_bound = kappa * cycles_per_us / _cycles_per_access(core, kappa)
    return min(issue_bound, memory_bound) / _instruction_stall_factor(
        core, kappa
    )


def derive_roofline(
    core: CoreMicroarchitecture,
    kappa_max: float = 500.0,
    samples: int = 120,
) -> FittedPiecewise:
    """Sample the model and fit the paper's four-segment form (Eq 5)."""
    if samples < 8:
        raise ConfigurationError("need at least 8 samples for a 4-piece fit")
    step = kappa_max / samples
    kappas = [step * (index + 1) for index in range(samples)]
    values = [instructions_per_microsecond(core, k) for k in kappas]
    return fit_piecewise(kappas, values, segments=4)
