"""EAS-like OS scheduler simulation (the paper's *OS* baseline, §VI-A).

Linux's Energy Aware Scheduling places waking threads on the core whose
energy-model delta is smallest, using per-thread *utilization tracking*
as its only view of the workload. Two consequences the paper measures:

* the utilization signal treats the compression thread as a black box —
  a windowed average that underestimates bursty per-batch demand — so
  EAS consolidates too many workers onto little cores and violates the
  latency constraint;
* periodic load balancing migrates threads between clusters, costing
  context switches (the paper counts ~60 000 per compressed MB, vs ~10
  under CStream) and cache-refill latency jitter.

:func:`eas_place` reproduces the placement decision;
:data:`OS_DYNAMICS` carries the migration/switch behaviour the executor
injects during the run.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.trace import active_recorder
from repro.simcore.boards import BoardSpec

__all__ = ["eas_place", "OS_CONTEXT_SWITCHES_PER_KB", "OS_MIGRATION_RATE"]

#: the paper's measurement: ~60 000 context switches per MB under OS
OS_CONTEXT_SWITCHES_PER_KB = 58.6
#: probability per batch that load balancing migrates a worker
OS_MIGRATION_RATE = 0.25

#: EAS's windowed utilization estimate for one compression worker —
#: deliberately below the worker's true busy fraction (black-box view).
_UTILIZATION_ESTIMATE = 0.45
#: EAS packs onto a core until its estimated utilization exceeds this.
_PACKING_THRESHOLD = 0.9


def eas_place(
    board: BoardSpec,
    worker_count: int,
    rng: np.random.Generator,
) -> Tuple[int, ...]:
    """Place ``worker_count`` compression workers EAS-style.

    Workers are packed onto little cores first (their energy-model cost
    is lowest) until each core's *estimated* utilization budget runs
    out, then onto big cores; wake order is randomized like real thread
    wakeups, so placements differ between runs.
    """
    if worker_count < 1:
        raise ConfigurationError("worker_count must be positive")
    little = list(board.little_core_ids)
    big = list(board.big_core_ids)
    rng.shuffle(little)
    rng.shuffle(big)
    ordered = little + big
    utilization = {core_id: 0.0 for core_id in ordered}
    placement: List[int] = []
    for _ in range(worker_count):
        chosen = None
        for core_id in ordered:
            if utilization[core_id] + _UTILIZATION_ESTIMATE <= _PACKING_THRESHOLD:
                chosen = core_id
                break
        if chosen is None:
            # Everything "full": spill onto the least-utilized core.
            chosen = min(ordered, key=lambda c: utilization[c])
        utilization[chosen] += _UTILIZATION_ESTIMATE
        placement.append(chosen)
    result = tuple(placement)
    # Placement decisions are a first-class trace event: a traced run
    # (the executor publishes its recorder for the duration) shows where
    # each EAS wake-up round put the workers.
    recorder = active_recorder()
    if recorder is not None:
        recorder.placement("eas_place", result)
    return result
