"""Pipeline executor: runs a scheduling plan on the simulated board.

One *repetition* pushes several batches through the task pipeline as a
discrete-event simulation:

* every task replica is a DES process pinned to its core;
* cores are FIFO servers — colocated tasks serialize, with a context
  switch charged between different tasks (capacity, Eq 3);
* inter-stage data moves through message channels priced by the
  interconnect (Eq 7) — one message per producer/consumer pair;
* service times carry multiplicative lognormal noise (plus any
  mechanism-specific jitter, e.g. OS migration noise);
* the energy meter integrates busy power (with replication and
  shared-state-lock overheads), context switches, DVFS transitions,
  idle/static power over the window and — when the pipeline's period
  overruns ``L_set`` — an *overload buffering* penalty for the backlog
  that accumulates upstream (see DESIGN.md).

Measured compressing latency of a batch is the pipeline's steady-state
inter-departure period normalized by the batch size (µs/byte), which is
exactly what Eq 2's ``L_est = max(l_i)`` predicts.

Observability: construct with ``trace=TraceRecorder()`` and the executor
emits task service spans, context-switch/migration counters, batch
boundaries, fault injections, DVFS transitions, queue depths and energy
samples as the DES runs, then attaches a
:class:`~repro.obs.trace.TraceSummary` to the returned
:class:`RunResult`. Tracing is strictly read-only — it consumes no RNG
draws and schedules no events — so a traced run's numbers are
byte-identical to an untraced run's (tests assert this).
"""

from __future__ import annotations

import gc
import warnings
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.compression.base import StepCost
from repro.core.plan import SchedulingPlan
from repro.errors import ConfigurationError
from repro.faults.model import (
    CoreFailure,
    CoreStall,
    DvfsThrottle,
    FaultPlan,
    FiredFault,
    InterconnectDegradation,
    corruption_schedule,
)
from repro.numerics import ordered_sum
from repro.obs.trace import TraceRecorder, set_active_recorder
from repro.runtime.metrics import BatchMetrics, RepetitionResult, RunResult
from repro.simcore.boards import BoardSpec
from repro.simcore.dvfs import Governor, StaticGovernor, get_governor
from repro.simcore.engine import Simulator, Store
from repro.simcore.hardware import replication_factor
from repro.simcore.interconnect import Path
from repro.simcore.power import EnergyMeter

__all__ = [
    "ExecutionConfig",
    "FaultSpec",
    "MechanismDynamics",
    "PipelineExecutor",
    "WindowObservation",
    "WindowDecision",
    "SessionResult",
]

#: κ assumed for context-switch work (kernel code, cache refills)
_SWITCH_KAPPA = 50.0
#: real cpufreq governors re-evaluate every ~10 ms; the executor decides
#: per batch, so transition costs scale by the missed decision points
GOVERNOR_SAMPLING_PERIOD_US = 10_000.0


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of one measurement campaign."""

    latency_constraint_us_per_byte: float
    repetitions: int = 100
    batches_per_repetition: int = 6
    warmup_batches: int = 2
    noise_sigma: float = 0.006
    seed: int = 0
    governor: str = "default"
    frequency_map: Optional[Mapping[int, float]] = None
    #: µJ/byte charged per µs/byte of period overrun (backlog buffering);
    #: saturates at the cap — beyond it the ingest queue drops data
    overload_penalty: float = 0.10
    overload_penalty_cap_us_per_byte: float = 8.0
    #: flat µJ/byte cost of spilling the backlog once a batch violates
    overload_base_penalty: float = 0.08
    #: stages whose state is shared across replicas pay this per extra
    #: replica on both time and energy (lock traffic, Fig 5)
    shared_state: bool = False
    shared_state_lock_penalty: float = 0.165
    shared_state_energy_penalty: float = 0.10
    #: deprecated single thermal-throttling fault — use ``fault_plan``
    fault: Optional["FaultSpec"] = None
    #: injected fault schedule (see :mod:`repro.faults`)
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.latency_constraint_us_per_byte <= 0:
            raise ConfigurationError("latency constraint must be positive")
        if self.repetitions < 1 or self.batches_per_repetition < 1:
            raise ConfigurationError("need at least one repetition and batch")
        if self.warmup_batches >= self.batches_per_repetition:
            raise ConfigurationError("warmup must leave measurable batches")
        if self.fault is not None:
            adapted = FaultPlan(
                events=(
                    DvfsThrottle(
                        core_id=self.fault.core_id,
                        at_batch=self.fault.at_batch,
                        frequency_mhz=self.fault.frequency_mhz,
                    ),
                )
            )
            if self.fault_plan is None:
                warnings.warn(
                    "ExecutionConfig.fault is deprecated; pass "
                    "fault_plan=FaultPlan(events=(DvfsThrottle(...),)) "
                    "instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
                object.__setattr__(self, "fault_plan", adapted)
            elif self.fault_plan != adapted:
                # dataclasses.replace() re-runs this hook with both
                # fields populated; only a genuine disagreement is an
                # error.
                raise ConfigurationError(
                    "fault and fault_plan disagree; drop the deprecated "
                    "fault field"
                )


@dataclass(frozen=True)
class FaultSpec:
    """A thermal-throttling fault: after ``at_batch`` batches complete,
    ``core_id`` is capped to ``frequency_mhz`` (the SoC's thermal
    governor stepping in).

    Deprecated: :class:`~repro.faults.model.FaultPlan` with a
    :class:`~repro.faults.model.DvfsThrottle` event is the general
    spelling; ``ExecutionConfig(fault=...)`` still works through an
    adapter but emits a :class:`DeprecationWarning`."""

    core_id: int
    at_batch: int
    frequency_mhz: float

    def __post_init__(self) -> None:
        if self.at_batch < 0:
            raise ConfigurationError("at_batch must be non-negative")
        if self.frequency_mhz <= 0:
            raise ConfigurationError("capped frequency must be positive")


@dataclass(frozen=True)
class MechanismDynamics:
    """Runtime behaviour injected by the parallelization mechanism."""

    #: preemption context switches per KiB of data processed
    context_switches_per_kb: float = 0.001
    #: probability per batch that the OS migrates a task (latency spike)
    migration_rate_per_batch: float = 0.0
    #: relative latency cost of one migration event
    migration_latency_fraction: float = 0.08
    #: extra lognormal jitter on service times (scheduler interference)
    latency_jitter_sigma: float = 0.0


class _CoreServer:
    """FIFO work server for one core inside a repetition's DES.

    Two implementations share one calendar ordering (see DESIGN.md
    "Performance engineering"):

    * **traced** — the original generator process pulling from a named
      :class:`Store`, so the trace keeps its ``coreN.runq`` queue-depth
      events;
    * **untraced** — a callback chain on the same calendar positions.
      The store's put event fired with no observers and the getter
      event was created back-to-back with it inside one callback, so
      replacing the pair with a single "kick" event (and the generator
      resumes with plain callbacks) removes no observable ordering:
      every remaining event lands in the same bucket slot relative to
      every foreign event.
    """

    def __init__(
        self,
        simulator: Simulator,
        core_spec,
        frequency_mhz: float,
        meter: EnergyMeter,
        switch_instructions: float,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.simulator = simulator
        self.core = core_spec
        self.frequency_mhz = frequency_mhz
        self.meter = meter
        self.switch_instructions = switch_instructions
        self.trace = trace
        self.busy_us = 0.0
        self.energy_by_batch: Dict[int, float] = {}
        self.spans: List = []  # (task_name, batch, start_us, end_us)
        self._last_task: Optional[str] = None
        self.failed = False
        self.failover: Optional["_CoreServer"] = None
        self.forward_penalty = 1.0
        # (frequency -> (switch_us, switch_energy)) — η/power lookups
        # for the fixed switch κ leave the hot path; DVFS refills.
        self._switch_costs: Dict[float, tuple] = {}
        if trace is not None:
            self.requests = Store(
                simulator, name=f"core{core_spec.core_id}.runq"
            )
            simulator.process(self._serve(), name=f"core{core_spec.core_id}")
        else:
            self.requests = None
            self._queue = deque()
            self._idle = True
            self._current = None
            self._start_us = 0.0

    def fail(self, failover: "_CoreServer", penalty: float) -> None:
        """Mark the core permanently dead.

        Work already queued here (the in-flight batch) is lost and
        re-enqueued on ``failover``: its duration rescales by the η
        ratio of the two cores at the reference κ times ``penalty``
        (emergency re-execution without the planned placement), and its
        energy scales with the re-executed occupancy. The dead core
        emits no further service spans (trace invariant TRC006).
        """
        self.failed = True
        self.failover = failover
        self.forward_penalty = penalty

    def submit(
        self,
        task_name: str,
        batch_index: int,
        duration_us: float,
        energy_uj: float,
    ):
        """Queue ``duration_us`` of occupancy drawing ``energy_uj``."""
        done = self.simulator.event(transient=True)
        item = (task_name, batch_index, duration_us, energy_uj, done)
        if self.requests is not None:
            self.requests.put(item, transient=True)
            return done
        self._queue.append(item)
        if self._idle:
            self._idle = False
            kick = self.simulator._internal_event()
            kick.callbacks.append(self._begin)
            kick.succeed(None)
        return done

    # -- untraced callback chain ------------------------------------------

    def _begin(self, _event) -> None:
        item = self._queue.popleft()
        task_name, batch_index, duration, energy_uj, done = item
        if self.failed:
            target = self.failover
            scale = (
                self.core.eta_at(_SWITCH_KAPPA, self.frequency_mhz)
                / target.core.eta_at(_SWITCH_KAPPA, target.frequency_mhz)
            ) * self.forward_penalty
            forwarded = target.submit(
                task_name, batch_index, duration * scale, energy_uj * scale
            )
            forwarded.callbacks.append(
                lambda _e, waiter=done: waiter.succeed(None)
            )
            self._next()
            return
        if self._last_task is not None and self._last_task != task_name:
            frequency = self.frequency_mhz
            cached = self._switch_costs.get(frequency)
            if cached is None:
                switch_us = self.switch_instructions / self.core.eta_at(
                    _SWITCH_KAPPA, frequency
                )
                cached = (
                    switch_us,
                    switch_us
                    * self.core.busy_power_w(_SWITCH_KAPPA, frequency),
                )
                self._switch_costs[frequency] = cached
            self.meter.record_overhead(cached[1])
            self.busy_us += cached[0]
            self._current = item
            pause = self.simulator.timeout(cached[0], transient=True)
            pause.callbacks.append(self._after_switch)
            return
        self._start(item)

    def _after_switch(self, _event) -> None:
        self._start(self._current)

    def _start(self, item) -> None:
        self._last_task = item[0]
        self._current = item
        self._start_us = self.simulator.now
        work = self.simulator.timeout(item[2], transient=True)
        work.callbacks.append(self._complete)

    def _complete(self, _event) -> None:
        task_name, batch_index, duration, energy_uj, done = self._current
        start = self._start_us
        self.spans.append(
            (task_name, batch_index, start, self.simulator.now)
        )
        mean_power = energy_uj / duration if duration > 0 else 0.0
        energy = self.meter.record_busy(
            self.core.core_id, start, duration, mean_power
        )
        self.busy_us += duration
        energy_by_batch = self.energy_by_batch
        energy_by_batch[batch_index] = (
            energy_by_batch.get(batch_index, 0.0) + energy
        )
        done.succeed(None)
        self._next()

    def _next(self) -> None:
        if self._queue:
            kick = self.simulator._internal_event()
            kick.callbacks.append(self._begin)
            kick.succeed(None)
        else:
            self._idle = True

    # -- traced generator server ------------------------------------------

    def _serve(self):
        # Localized once for the server's lifetime: simulator, stores,
        # meter, core and trace never change (frequency does — it is the
        # one attribute the loop re-reads every iteration).
        simulator = self.simulator
        timeout = simulator.timeout
        requests_get = self.requests.get
        core = self.core
        core_id = core.core_id
        meter = self.meter
        trace = self.trace
        spans = self.spans
        energy_by_batch = self.energy_by_batch
        # (frequency -> (switch_us, switch_energy)) — η/power lookups for
        # the fixed switch κ leave the loop; frequency changes re-fill.
        switch_costs = {}
        while True:
            item = yield requests_get(transient=True)
            task_name, batch_index, duration, energy_uj, done = item
            if self.failed:
                # The dead core's in-flight batch is lost; re-enqueue it
                # on the failover server and complete the waiter when the
                # re-execution does. No span, busy time or energy lands
                # on this core.
                target = self.failover
                scale = (
                    core.eta_at(_SWITCH_KAPPA, self.frequency_mhz)
                    / target.core.eta_at(
                        _SWITCH_KAPPA, target.frequency_mhz
                    )
                ) * self.forward_penalty
                forwarded = target.submit(
                    task_name, batch_index, duration * scale,
                    energy_uj * scale,
                )
                forwarded.callbacks.append(
                    lambda _event, waiter=done: waiter.succeed(None)
                )
                continue
            if self._last_task is not None and self._last_task != task_name:
                frequency = self.frequency_mhz
                cached_switch = switch_costs.get(frequency)
                if cached_switch is None:
                    switch_us = self.switch_instructions / core.eta_at(
                        _SWITCH_KAPPA, frequency
                    )
                    cached_switch = (
                        switch_us,
                        switch_us * core.busy_power_w(_SWITCH_KAPPA, frequency),
                    )
                    switch_costs[frequency] = cached_switch
                switch_us = cached_switch[0]
                meter.record_overhead(cached_switch[1])
                self.busy_us += switch_us
                yield timeout(switch_us)
                if trace is not None:
                    trace.context_switch(
                        core_id, 1.0, simulator.now,
                        duration_us=switch_us,
                    )
            self._last_task = task_name
            start = simulator.now
            yield timeout(duration)
            end = simulator.now
            spans.append((task_name, batch_index, start, end))
            if trace is not None:
                trace.span(task_name, core_id, start, end, batch=batch_index)
            mean_power = energy_uj / duration if duration > 0 else 0.0
            energy = meter.record_busy(core_id, start, duration, mean_power)
            self.busy_us += duration
            energy_by_batch[batch_index] = (
                energy_by_batch.get(batch_index, 0.0) + energy
            )
            done.succeed(None)


@dataclass(frozen=True)
class WindowObservation:
    """What the executor tells a session controller at a window boundary.

    ``latencies_us_per_byte`` are the window's per-batch inter-departure
    periods normalized by batch size — the same quantity the static
    path's :class:`BatchMetrics` report (energy shares are only known at
    the end of the run, so they are not part of the observation).
    """

    window_index: int
    batch_start: int
    batch_count: int
    now_us: float
    latencies_us_per_byte: Tuple[float, ...]
    #: cores that died (permanent fault) up to this boundary — the
    #: heartbeat signal a controller's failover path reads
    failed_cores: Tuple[int, ...] = ()
    #: fault-throttled cores and their capped frequency (MHz)
    throttled_mhz: Tuple[Tuple[int, float], ...] = ()
    #: the window's :class:`~repro.obs.residuals.WindowTelemetry` when
    #: the executor was built with a telemetry collector; ``None``
    #: otherwise (duck-typed — the runtime never imports the obs layer)
    telemetry: Optional[object] = None


@dataclass(frozen=True)
class WindowDecision:
    """A controller's verdict for the next window.

    ``replanned=False`` (or a ``None`` return from the controller)
    keeps the incumbent plan without emitting any trace event. With
    ``replanned=True`` the executor records a ``replan`` instant;
    ``adopted=True`` additionally swaps to ``plan``, charging
    ``pause_us`` of pipeline stall and ``energy_uj`` of transfer energy
    before the next window starts.
    """

    replanned: bool = False
    adopted: bool = False
    reason: str = ""
    plan: Optional[SchedulingPlan] = None
    pause_us: float = 0.0
    energy_uj: float = 0.0
    moved_replicas: int = 0
    moves: str = ""
    energy_uj_per_byte: float = 0.0
    warm_start_hits: int = 0


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one windowed session (:meth:`PipelineExecutor.run_session`)."""

    batches: Tuple[BatchMetrics, ...]
    windows: int
    replans: int
    plans_adopted: int
    migration_pause_us: float
    migration_energy_uj: float
    plan_descriptions: Tuple[str, ...]
    decisions: Tuple[WindowDecision, ...]
    #: faults that fired during the session, in firing order
    fault_events: Tuple[FiredFault, ...] = ()
    #: per-batch completion timestamps (µs) — recovery latency is read
    #: off these against the fault firing times
    completion_ts_us: Tuple[float, ...] = ()

    @property
    def final_plan_description(self) -> str:
        return self.plan_descriptions[-1] if self.plan_descriptions else ""

    def measured(self, warmup_batches: int) -> Tuple[BatchMetrics, ...]:
        return self.batches[warmup_batches:]


class _RepetitionRun:
    """One repetition's DES state: simulator, servers, meter, governor.

    Shared by the one-shot path (:meth:`PipelineExecutor._run_once`) and
    the windowed session path (:meth:`PipelineExecutor.run_session`).
    Event-creation order is what fixes the heap's sequence numbers — and
    with them the interleaving and the RNG draw order — so construction
    mirrors the historical one-shot order exactly: core servers, then
    shared-state locks, then (per spawned plan) message channels, task
    processes and finally the source.
    """

    def __init__(
        self,
        executor: "PipelineExecutor",
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        graph,
        batch_bytes: int,
        rng: np.random.Generator,
        governor: Governor,
        dynamics: MechanismDynamics,
        shared_state_stages: Set[int],
        repetition: int = 0,
    ) -> None:
        self.config = executor.config
        self.board = executor.board
        self.trace = executor.trace
        self.telemetry = executor.telemetry
        self.batch_bytes = batch_bytes
        self.rng = rng
        self.governor = governor
        self.dynamics = dynamics
        self.shared_state_stages = shared_state_stages
        self.batch_count = len(per_batch_step_costs)
        self.interconnect = self.board.interconnect
        self.repetition = repetition

        # Injected-fault state. Everything is pre-resolved here so the
        # fault-free path stays byte-identical: empty dicts make every
        # in-loop guard a no-op and no extra RNG draw ever happens.
        fault_plan = self.config.fault_plan
        self.fault_schedule: Dict[int, Tuple] = (
            fault_plan.schedule_for(repetition)
            if fault_plan is not None else {}
        )
        self.corrupted = (
            corruption_schedule(fault_plan, repetition, self.batch_count)
            if fault_plan is not None else {}
        )
        self.failed_cores: Dict[int, int] = {}  # dead core -> fallback
        self.fault_throttled: Dict[int, float] = {}
        self.reroute_penalty = 0.0
        self.fired_faults: List[FiredFault] = []

        # Per-batch merged stage costs (global batch indices). A pure
        # function of (graph, step costs), both of which every
        # repetition of one measurement shares — so the merged rows are
        # memoized on the executor (identity-keyed; the rows are never
        # mutated) instead of being rebuilt 60 times per cell.
        memo = executor._stage_costs_memo
        if (
            memo is not None
            and memo[0] is graph
            and memo[1] is per_batch_step_costs
        ):
            self.stage_costs: List[List[StepCost]] = memo[2]
        else:
            self.stage_costs = [
                [task.merged_cost(costs) for task in graph.tasks]
                for costs in per_batch_step_costs
            ]
            executor._stage_costs_memo = (
                graph, per_batch_step_costs, self.stage_costs
            )

        self.simulator = Simulator(trace=self.trace)
        self.meter = EnergyMeter(
            self.board, trace=self.trace, clock=(lambda: self.simulator.now)
        )
        if self.trace is not None:
            governor.attach_trace(self.trace, lambda: self.simulator.now)
        self.servers = {
            core.core_id: _CoreServer(
                self.simulator,
                core,
                governor.frequency_of(core.core_id),
                self.meter,
                self.board.context_switch_instructions,
                trace=self.trace,
            )
            for core in self.board.cores
        }

        # Shared-state stages serialize through a lock: one token per
        # stage, so replicated workers of that stage cannot overlap —
        # this is what nullifies data parallelism in Fig 5's "share"
        # configuration.
        self.stage_locks: Dict[int, Store] = {}
        if self.config.shared_state:
            for stage_index in sorted(shared_state_stages):
                lock = Store(self.simulator, capacity=1)
                lock.put(object())
                self.stage_locks[stage_index] = lock

        self.completions: Dict[int, float] = {}
        self.pending_stall: Dict[int, float] = {}
        self.previous_busy: Dict[int, float] = {c: 0.0 for c in self.servers}
        self.previous_time = 0.0
        self.completed_batches = 0

    # -- governor / fault hook ----------------------------------------------

    def on_batch_complete(self) -> None:
        """Sink hook: inject faults, feed the DVFS governor."""
        simulator = self.simulator
        servers = self.servers
        governor = self.governor
        self.completed_batches += 1
        if self.fault_schedule:
            for event in self.fault_schedule.pop(self.completed_batches, ()):
                self._fire(event)
        now = simulator.now
        elapsed = now - self.previous_time
        if elapsed <= 0.0:
            return
        utilization = {}
        for core_id, server in servers.items():
            utilization[core_id] = min(
                (server.busy_us - self.previous_busy[core_id]) / elapsed, 1.0
            )
            self.previous_busy[core_id] = server.busy_us
        self.previous_time = now
        before = dict(governor.frequencies)
        after = governor.observe(utilization)
        changes = [c for c in after if after[c] != before[c]]
        if changes:
            # A change at batch granularity stands for the decisions
            # the real governor made every sampling period meanwhile.
            samples = max(elapsed / GOVERNOR_SAMPLING_PERIOD_US, 1.0)
            stall_us, energy_uj = governor.transition_cost(len(changes))
            scale = samples * governor.oscillation_factor
            self.meter.record_overhead(energy_uj * scale)
            for core_id in changes:
                servers[core_id].frequency_mhz = after[core_id]
                self.pending_stall[core_id] = (
                    self.pending_stall.get(core_id, 0.0) + stall_us * scale
                )

    # -- fault firing --------------------------------------------------------

    def _failover_target(self, core_id: int) -> int:
        """Deterministic emergency fallback for a dead core: the
        lowest-id surviving core of the same cluster, else the lowest-id
        survivor anywhere. Raises if every core is dead."""
        dead = set(self.failed_cores) | {core_id}
        victim = self.board.core_by_id[core_id]
        survivors = [
            c.core_id for c in self.board.cores if c.core_id not in dead
        ]
        if not survivors:
            raise ConfigurationError(
                "fault plan killed every core on the board"
            )
        same_cluster = [
            c for c in survivors
            if self.board.core_by_id[c].is_big == victim.is_big
        ]
        return min(same_cluster) if same_cluster else min(survivors)

    def route_core(self, core_id: int) -> int:
        """Resolve a planned core through the failure map (transitively,
        in case a fallback died later)."""
        seen = set()
        while core_id in self.failed_cores and core_id not in seen:
            seen.add(core_id)
            core_id = self.failed_cores[core_id]
        return core_id

    def _fire(self, event) -> None:
        """Apply one batch-boundary fault event to the live simulation."""
        simulator = self.simulator
        servers = self.servers
        now = simulator.now
        batch = self.completed_batches
        if isinstance(event, DvfsThrottle):
            if event.core_id not in servers:
                return
            servers[event.core_id].frequency_mhz = min(
                servers[event.core_id].frequency_mhz,
                event.frequency_mhz,
            )
            self.fault_throttled[event.core_id] = min(
                self.fault_throttled.get(event.core_id, float("inf")),
                event.frequency_mhz,
            )
            if self.trace is not None:
                self.trace.fault(event.core_id, now, event.frequency_mhz)
            self.fired_faults.append(FiredFault(
                kind=event.kind, ts_us=now, batch=batch,
                core_id=event.core_id,
                detail=f"capped at {event.frequency_mhz:g} MHz",
            ))
        elif isinstance(event, CoreStall):
            if event.core_id not in servers:
                return
            self.pending_stall[event.core_id] = (
                self.pending_stall.get(event.core_id, 0.0) + event.stall_us
            )
            if self.trace is not None:
                self.trace.core_stall(event.core_id, now, event.stall_us)
            self.fired_faults.append(FiredFault(
                kind=event.kind, ts_us=now, batch=batch,
                core_id=event.core_id,
                detail=f"stalled {event.stall_us:g} us",
            ))
        elif isinstance(event, CoreFailure):
            if event.core_id not in servers or event.core_id in self.failed_cores:
                return
            target = self._failover_target(event.core_id)
            self.failed_cores[event.core_id] = target
            self.reroute_penalty = max(
                self.reroute_penalty, event.reroute_penalty
            )
            servers[event.core_id].fail(
                servers[target], 1.0 + event.reroute_penalty
            )
            if self.trace is not None:
                self.trace.core_failure(event.core_id, target, now)
            self.fired_faults.append(FiredFault(
                kind=event.kind, ts_us=now, batch=batch,
                core_id=event.core_id,
                detail=f"failover to core {target}",
            ))
        elif isinstance(event, InterconnectDegradation):
            path = Path(event.path)
            self.interconnect = self.interconnect.degraded(
                path, event.factor
            )
            if self.trace is not None:
                self.trace.interconnect_degraded(
                    event.path, now, event.factor
                )
            self.fired_faults.append(FiredFault(
                kind=event.kind, ts_us=now, batch=batch,
                detail=f"{event.path} slowed x{event.factor:g}",
            ))

    # -- plan spawning -------------------------------------------------------

    def spawn_plan(
        self, plan: SchedulingPlan, batch_start: int, batch_count: int
    ) -> List:
        """Create channels and processes running ``plan`` over the batch
        range ``[batch_start, batch_start + batch_count)``.

        Returns the spawned processes (tasks + source); every process
        ends after its last batch, so joining them all is the session
        path's in-flight draining barrier at a window boundary.
        """
        config = self.config
        board = self.board
        trace = self.trace
        telemetry = self.telemetry
        simulator = self.simulator
        meter = self.meter
        servers = self.servers
        rng = self.rng
        dynamics = self.dynamics
        stage_costs = self.stage_costs
        batch_bytes = self.batch_bytes
        stage_locks = self.stage_locks
        completions = self.completions
        pending_stall = self.pending_stall
        graph = plan.graph

        # Message channels: one store per (producer, consumer) pair so a
        # fast producer cannot make a consumer start a batch before every
        # upstream share has arrived. A consumer's inboxes are indexed by
        # flattened (predecessor stage ascending, replica ascending) —
        # the deterministic join order: a join stage drains every
        # producer's store in that fixed sequence, so fan-in arrival
        # order can never reorder simulated events. Root stages (no
        # predecessors) hold a single source-token store instead.
        stage_inputs: List[List[List[Store]]] = []
        for stage_index, cores in enumerate(plan.assignments):
            producer_stages = graph.predecessors_of(stage_index)
            producer_count = (
                1
                if not producer_stages
                else sum(plan.replicas(p) for p in producer_stages)
            )
            stage_inputs.append(
                [
                    [
                        Store(
                            simulator,
                            capacity=1,
                            name=(
                                f"q.s{stage_index}r{replica}.p{producer}"
                                if trace is not None
                                else None
                            ),
                        )
                        for producer in range(producer_count)
                    ]
                    for replica in range(len(cores))
                ]
            )
        final_tokens: Dict[int, int] = {}
        last_stage = graph.stage_count - 1
        final_replicas = plan.replicas(last_stage)

        def task_process(stage_index: int, replica_index: int, core_id: int):
            replicas = plan.replicas(stage_index)
            lat_overhead = replication_factor(
                board.replication_latency_overhead, replicas
            )
            energy_factor = replication_factor(
                board.replication_energy_overhead, replicas
            )
            lock_factor = 1.0
            lock_energy_factor = 1.0
            if config.shared_state and stage_index in self.shared_state_stages:
                lock_factor = 1.0 + config.shared_state_lock_penalty * (
                    replicas - 1
                )
                lock_energy_factor = 1.0 + config.shared_state_energy_penalty * (
                    replicas - 1
                )
            inboxes = stage_inputs[stage_index][replica_index]
            # Everything below is constant across the task's batch loop —
            # hoisted so the per-batch body (the simulator's hottest
            # Python) only computes what actually varies. The hoisted
            # floats are the same expressions evaluated once, so every
            # simulated number is bit-identical.
            sigma = config.noise_sigma + dynamics.latency_jitter_sigma
            draw_noise = sigma > 0
            rng_lognormal = rng.lognormal
            rng_random = rng.random
            record_overhead = meter.record_overhead
            migration_rate = dynamics.migration_rate_per_batch
            has_migration = migration_rate > 0.0
            extra_switches = (
                (batch_bytes / replicas) / 1024.0
                * dynamics.context_switches_per_kb
            )
            has_switches = extra_switches > 0.0
            task_label = f"s{stage_index}r{replica_index}"
            lock = stage_locks.get(stage_index)
            is_last_stage = stage_index == last_stage
            is_root = not graph.predecessors_of(stage_index)
            # One route per successor stage: its inbox table, its replica
            # count, and where this stage's replicas sit in the consumer's
            # flattened (predecessor stage asc, replica asc) inbox order.
            # For a chain this is exactly one route with offset 0.
            successor_routes = []
            for consumer_stage in graph.successors_of(stage_index):
                producer_offset = 0
                for producer_stage in graph.predecessors_of(consumer_stage):
                    if producer_stage == stage_index:
                        break
                    producer_offset += plan.replicas(producer_stage)
                successor_routes.append((
                    stage_inputs[consumer_stage],
                    plan.replicas(consumer_stage),
                    producer_offset,
                ))
            # switch_us and its overhead energy depend only on the routed
            # core and its (governor-adjustable) frequency — memoized per
            # (core, frequency) so the η/power lookups leave the loop.
            switch_costs = {}
            for batch_index in range(batch_start, batch_start + batch_count):
                # Planned placement, resolved through the failure map. On
                # a healthy run failed_cores is empty and this is the
                # planned core, byte-for-byte.
                routed_core = core_id
                if self.failed_cores:
                    routed_core = self.route_core(core_id)
                server = servers[routed_core]
                if is_root:
                    yield inboxes[0].get(transient=True)  # source token
                else:
                    # Deterministic join barrier: drain every upstream
                    # store in fixed (predecessor stage asc, replica asc)
                    # order before any compute, so fan-in arrival order
                    # cannot perturb the simulation.
                    comm_us = 0.0
                    for inbox in inboxes:
                        token = yield inbox.get(transient=True)
                        producer_core, transfer_bytes = token[1], token[2]
                        path = board.path_between(producer_core, routed_core)
                        hop_us = self.interconnect.transfer_latency_us(
                            path, transfer_bytes
                        )
                        comm_us += hop_us
                        record_overhead(
                            self.interconnect.message_energy(path)
                        )
                        if telemetry is not None:
                            telemetry.comm(path.value, hop_us, batch_index)
                    if comm_us > 0.0:
                        yield simulator.timeout(comm_us, transient=True)
                cost = stage_costs[batch_index][stage_index]
                kappa = cost.operational_intensity
                instructions = cost.instructions / replicas
                eta = server.core.eta_at(kappa, server.frequency_mhz)
                power = server.core.busy_power_w(kappa, server.frequency_mhz)
                noise = float(rng_lognormal(0.0, sigma)) if draw_noise else 1.0
                base_duration = instructions / eta * noise
                duration = base_duration * lock_factor * lat_overhead
                energy_uj = (
                    base_duration * power * energy_factor * lock_energy_factor
                )
                if routed_core != core_id:
                    # Emergency-rerouted work runs off-plan: cold caches
                    # and doubled-up queues until the controller replans.
                    duration *= 1.0 + self.reroute_penalty
                    energy_uj *= 1.0 + self.reroute_penalty
                if has_migration and rng_random() < migration_rate:
                    duration *= 1.0 + dynamics.migration_latency_fraction
                    record_overhead(
                        base_duration
                        * dynamics.migration_latency_fraction
                        * power
                    )
                    if trace is not None:
                        trace.migration(routed_core, simulator.now)
                if has_switches:
                    switch_key = (routed_core, server.frequency_mhz)
                    cached_switch = switch_costs.get(switch_key)
                    if cached_switch is None:
                        switch_us = (
                            extra_switches
                            * board.context_switch_instructions
                            / server.core.eta_at(
                                _SWITCH_KAPPA, server.frequency_mhz
                            )
                        )
                        cached_switch = (
                            switch_us,
                            switch_us
                            * server.core.busy_power_w(
                                _SWITCH_KAPPA, server.frequency_mhz
                            ),
                        )
                        switch_costs[switch_key] = cached_switch
                    duration += cached_switch[0]
                    record_overhead(cached_switch[1])
                    if trace is not None:
                        trace.context_switch(
                            routed_core, extra_switches, simulator.now
                        )
                duration += pending_stall.pop(routed_core, 0.0)
                if lock is not None:
                    token = yield lock.get(transient=True)
                yield server.submit(
                    task_label,
                    batch_index,
                    duration,
                    energy_uj,
                )
                if lock is not None:
                    yield lock.put(token, transient=True)
                if is_last_stage:
                    final_tokens[batch_index] = (
                        final_tokens.get(batch_index, 0) + 1
                    )
                    if final_tokens[batch_index] == final_replicas:
                        corrupt = self.corrupted.pop(batch_index, None)
                        if corrupt is not None:
                            # Decode verification caught a corrupt batch:
                            # re-run the final stage after each capped
                            # exponential backoff. The inflated completion
                            # time is what violation accounting sees.
                            if trace is not None:
                                trace.batch_corrupted(
                                    batch_index,
                                    simulator.now,
                                    corrupt.attempts,
                                    exhausted=corrupt.exhausted,
                                )
                            self.fired_faults.append(FiredFault(
                                kind="batch-corruption",
                                ts_us=simulator.now,
                                batch=batch_index,
                                core_id=routed_core,
                                detail=(
                                    f"{corrupt.attempts} retries"
                                    + (
                                        " (exhausted)"
                                        if corrupt.exhausted else ""
                                    )
                                ),
                            ))
                            for attempt, backoff in enumerate(
                                corrupt.backoff_us
                            ):
                                if trace is not None:
                                    trace.batch_retry(
                                        batch_index,
                                        attempt,
                                        simulator.now,
                                        backoff_us=backoff,
                                    )
                                yield simulator.timeout(
                                    duration + backoff, transient=True
                                )
                                meter.record_overhead(energy_uj)
                            if telemetry is not None:
                                telemetry.retry(
                                    batch_index,
                                    stage_index,
                                    ordered_sum(
                                        duration + backoff
                                        for backoff in corrupt.backoff_us
                                    ),
                                    corrupt.attempts,
                                )
                        completions[batch_index] = simulator.now
                        if trace is not None:
                            trace.batch_complete(batch_index, simulator.now)
                        self.on_batch_complete()
                else:
                    # Fan-out: the full batch output is broadcast to each
                    # successor stage, split evenly across its replicas —
                    # matching the cost model's per-edge share.
                    for route in successor_routes:
                        consumer_inboxes, consumer_count, producer_offset = (
                            route
                        )
                        share = cost.output_bytes / replicas / consumer_count
                        slot = producer_offset + replica_index
                        for consumer_index in range(consumer_count):
                            inbox = consumer_inboxes[consumer_index][slot]
                            yield inbox.put(
                                (batch_index, routed_core, share),
                                transient=True,
                            )

        def source_process():
            root_stages = graph.roots()
            for batch_index in range(batch_start, batch_start + batch_count):
                for root_stage in root_stages:
                    for consumer_inboxes in stage_inputs[root_stage]:
                        yield consumer_inboxes[0].put(
                            (batch_index, -1, 0.0), transient=True
                        )

        processes: List = []
        for stage_index, cores in enumerate(plan.assignments):
            for replica_index, core_id in enumerate(cores):
                processes.append(
                    simulator.process(
                        task_process(stage_index, replica_index, core_id),
                        name=f"task-s{stage_index}r{replica_index}",
                    )
                )
        processes.append(
            simulator.process(source_process(), name="source")
        )
        return processes

    def check_complete(self) -> None:
        if len(self.completions) != self.batch_count:
            missing = self.batch_count - len(self.completions)
            raise ConfigurationError(
                f"pipeline deadlocked: {missing} batches never completed"
            )


class PipelineExecutor:
    """Runs scheduling plans on a simulated board and measures them.

    After a run, :attr:`last_trace` holds the final repetition's
    execution trace: ``{core_id: [(task, batch, start_us, end_us), ...]}``
    — the raw material for Gantt rendering and occupancy debugging.

    ``trace`` attaches a :class:`~repro.obs.trace.TraceRecorder`; the
    run then also emits structured events (see the module docstring) and
    the returned :class:`RunResult` carries a ``trace_summary``.
    """

    def __init__(
        self,
        board: BoardSpec,
        config: ExecutionConfig,
        trace: Optional[TraceRecorder] = None,
        telemetry=None,
    ) -> None:
        self.board = board
        self.config = config
        self.trace = trace
        #: optional :class:`~repro.obs.residuals.TelemetryCollector`
        #: (duck-typed); ``None`` keeps every hook site dormant so the
        #: run stays byte-identical to a pre-telemetry build
        self.telemetry = telemetry
        self.last_trace: Dict[int, List] = {}
        #: (graph, per_batch_step_costs, merged rows) — see _RepetitionRun
        self._stage_costs_memo = None

    # -- public API ---------------------------------------------------------

    def run(
        self,
        plan: Union[SchedulingPlan, Callable[[int, np.random.Generator], SchedulingPlan]],
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        batch_bytes: int,
        dynamics: MechanismDynamics = MechanismDynamics(),
        shared_state_stages: Set[int] = frozenset(),
    ) -> RunResult:
        """Measure a plan (or a per-repetition plan factory) repeatedly."""
        repetition_results = []
        if self.trace is not None:
            # Publish the recorder so instrumentation points that plan
            # providers reach without a trace argument (eas_place) can
            # report; untraced runs never touch the ambient slot.
            set_active_recorder(self.trace)
        # The DES allocates generators/tuples in bulk and (with the
        # event free-list) frees almost nothing mid-repetition, so cycle
        # collection passes are pure overhead here. Pause the collector
        # for the measurement loop; one pass at the end reclaims cycles.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for repetition in range(self.config.repetitions):
                rng = np.random.default_rng(
                    self.config.seed + 7919 * repetition
                )
                if self.trace is not None:
                    self.trace.begin_repetition(repetition)
                current_plan = plan(repetition, rng) if callable(plan) else plan
                governor = self._make_governor()
                batches = self._run_once(
                    current_plan,
                    per_batch_step_costs,
                    batch_bytes,
                    rng,
                    governor,
                    dynamics,
                    shared_state_stages,
                    repetition=repetition,
                )
                measured = batches[self.config.warmup_batches:]
                latency = float(
                    np.mean([b.latency_us_per_byte for b in measured])
                )
                energy = float(
                    np.mean([b.energy_uj_per_byte for b in measured])
                )
                repetition_results.append(
                    RepetitionResult(
                        repetition=repetition,
                        batches=tuple(batches),
                        latency_us_per_byte=latency,
                        energy_uj_per_byte=energy,
                        violated=latency
                        > self.config.latency_constraint_us_per_byte,
                        plan_description=current_plan.describe(),
                    )
                )
        finally:
            if gc_was_enabled:
                gc.enable()
            if self.trace is not None:
                set_active_recorder(None)
        result = RunResult(repetitions=tuple(repetition_results))
        if self.trace is not None:
            result = replace(result, trace_summary=self.trace.summary())
        return result

    def run_single(
        self,
        plan: SchedulingPlan,
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        batch_bytes: int,
        rng: np.random.Generator,
        governor: Optional[Governor] = None,
        dynamics: MechanismDynamics = MechanismDynamics(),
        shared_state_stages: Set[int] = frozenset(),
        repetition: int = 0,
    ) -> List[BatchMetrics]:
        """One repetition with full control (used by the adaptive loop)."""
        if governor is None:
            governor = self._make_governor()
        return self._run_once(
            plan,
            per_batch_step_costs,
            batch_bytes,
            rng,
            governor,
            dynamics,
            shared_state_stages,
            repetition=repetition,
        )

    # -- internals ------------------------------------------------------------

    def _make_governor(self) -> Governor:
        if self.config.governor == "default":
            return StaticGovernor(self.board, self.config.frequency_map)
        return get_governor(self.config.governor, self.board)

    def _run_once(
        self,
        plan: SchedulingPlan,
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        batch_bytes: int,
        rng: np.random.Generator,
        governor: Governor,
        dynamics: MechanismDynamics,
        shared_state_stages: Set[int],
        repetition: int = 0,
    ) -> List[BatchMetrics]:
        run = _RepetitionRun(
            self,
            per_batch_step_costs,
            plan.graph,
            batch_bytes,
            rng,
            governor,
            dynamics,
            shared_state_stages,
            repetition=repetition,
        )
        run.spawn_plan(plan, 0, run.batch_count)
        run.simulator.run()
        run.check_complete()

        self.last_trace = {
            core_id: list(server.spans)
            for core_id, server in run.servers.items()
        }
        if self.trace is not None:
            self.trace.end_repetition(
                window_us=max(run.completions.values(), default=0.0),
                batch_bytes=batch_bytes,
                batches=run.batch_count,
            )
        return self._collect_metrics(
            plan, run.servers, run.meter, run.completions, batch_bytes, governor
        )

    # -- windowed session (online control loop) -------------------------------

    def run_session(
        self,
        plan: SchedulingPlan,
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        batch_bytes: int,
        *,
        window_batches: int,
        controller=None,
        dynamics: MechanismDynamics = MechanismDynamics(),
        shared_state_stages: Set[int] = frozenset(),
    ) -> SessionResult:
        """One continuous repetition executed window by window.

        Batches run in windows of ``window_batches``; at every window
        boundary the pipeline drains (the window's processes all end —
        no batch is in flight) and ``controller.on_window(observation)``
        may hand back a :class:`WindowDecision`. An adopted decision
        swaps the plan for the next window after charging the modeled
        migration pause and transfer energy, so reconfiguration shows up
        in both the latency and the energy of the measurement.

        ``controller=None`` replays the static plan with the same window
        structure — the baseline an adaptive session is compared to.
        The controller is duck-typed so :mod:`repro.control` can stay a
        downstream package (the runtime never imports it).
        """
        if window_batches < 1:
            raise ConfigurationError("window must hold at least one batch")
        config = self.config
        rng = np.random.default_rng(config.seed)
        governor = self._make_governor()
        trace = self.trace
        telemetry = self.telemetry
        if trace is not None:
            set_active_recorder(trace)
            trace.begin_repetition(0)
        try:
            run = _RepetitionRun(
                self,
                per_batch_step_costs,
                plan.graph,
                batch_bytes,
                rng,
                governor,
                dynamics,
                shared_state_stages,
            )
            batch_count = run.batch_count
            windows = [
                (start, min(window_batches, batch_count - start))
                for start in range(0, batch_count, window_batches)
            ]
            decisions: List[WindowDecision] = []
            plan_descriptions: List[str] = []
            totals = {"replans": 0, "adopted": 0, "pause_us": 0.0, "energy_uj": 0.0}

            def orchestrator():
                current = plan
                for window_index, (start, count) in enumerate(windows):
                    plan_descriptions.append(current.describe())
                    processes = run.spawn_plan(current, start, count)
                    # Draining barrier: every task has finished its last
                    # batch of this window before anything is reconfigured.
                    yield run.simulator.all_of(processes)
                    window_telemetry = None
                    if telemetry is not None:
                        window_telemetry = telemetry.collect_window(
                            window_index, start, count, batch_bytes,
                            run.servers,
                        )
                    if controller is None or window_index == len(windows) - 1:
                        continue
                    previous = (
                        run.completions[start - 1] if start > 0 else 0.0
                    )
                    latencies = []
                    for batch_index in range(start, start + count):
                        completed = run.completions[batch_index]
                        latencies.append(
                            (completed - previous) / batch_bytes
                        )
                        previous = completed
                    decision = controller.on_window(
                        WindowObservation(
                            window_index=window_index,
                            batch_start=start,
                            batch_count=count,
                            now_us=run.simulator.now,
                            latencies_us_per_byte=tuple(latencies),
                            failed_cores=tuple(sorted(run.failed_cores)),
                            throttled_mhz=tuple(
                                sorted(run.fault_throttled.items())
                            ),
                            telemetry=window_telemetry,
                        )
                    )
                    if decision is None or not decision.replanned:
                        continue
                    decisions.append(decision)
                    totals["replans"] += 1
                    if trace is not None:
                        trace.replan(
                            window_index,
                            run.simulator.now,
                            adopted=decision.adopted,
                            reason=decision.reason,
                            energy_uj_per_byte=decision.energy_uj_per_byte,
                            warm_start_hits=decision.warm_start_hits,
                        )
                    if not decision.adopted or decision.plan is None:
                        continue
                    totals["adopted"] += 1
                    if decision.pause_us > 0.0 or decision.energy_uj > 0.0:
                        totals["pause_us"] += decision.pause_us
                        totals["energy_uj"] += decision.energy_uj
                        run.meter.record_overhead(decision.energy_uj)
                        if trace is not None:
                            trace.plan_migration(
                                window_index,
                                run.simulator.now,
                                pause_us=decision.pause_us,
                                moved_replicas=decision.moved_replicas,
                                energy_uj=decision.energy_uj,
                                description=decision.moves,
                            )
                        if decision.pause_us > 0.0:
                            yield run.simulator.timeout(decision.pause_us)
                    current = decision.plan

            run.simulator.process(orchestrator(), name="session-controller")
            run.simulator.run()
            run.check_complete()

            self.last_trace = {
                core_id: list(server.spans)
                for core_id, server in run.servers.items()
            }
            if trace is not None:
                trace.end_repetition(
                    window_us=max(run.completions.values(), default=0.0),
                    batch_bytes=batch_bytes,
                    batches=batch_count,
                )
            metrics = self._collect_metrics(
                plan, run.servers, run.meter, run.completions,
                batch_bytes, governor,
            )
        finally:
            if trace is not None:
                set_active_recorder(None)
        return SessionResult(
            batches=tuple(metrics),
            windows=len(windows),
            replans=totals["replans"],
            plans_adopted=totals["adopted"],
            migration_pause_us=totals["pause_us"],
            migration_energy_uj=totals["energy_uj"],
            plan_descriptions=tuple(plan_descriptions),
            decisions=tuple(decisions),
            fault_events=tuple(run.fired_faults),
            completion_ts_us=tuple(
                run.completions[b] for b in range(batch_count)
            ),
        )

    def _collect_metrics(
        self,
        plan: SchedulingPlan,
        servers: Dict[int, "_CoreServer"],
        meter: EnergyMeter,
        completions: Dict[int, float],
        batch_bytes: int,
        governor: Governor,
    ) -> List[BatchMetrics]:
        config = self.config
        board = self.board
        batch_count = len(completions)
        window_us = max(completions.values())
        static_power = board.uncore_power_w + ordered_sum(
            core.static_power_w for core in board.cores
        )

        energy_by_batch: Dict[int, float] = {b: 0.0 for b in range(batch_count)}
        for server in servers.values():
            for batch_index, energy in server.energy_by_batch.items():
                energy_by_batch[batch_index] += energy
        overhead_total = meter.finalize(window_us).overhead_uj
        overhead_share = overhead_total / batch_count

        metrics: List[BatchMetrics] = []
        previous = 0.0
        for batch_index in range(batch_count):
            period_us = completions[batch_index] - previous
            previous = completions[batch_index]
            latency = period_us / batch_bytes
            energy = (
                energy_by_batch[batch_index]
                + static_power * period_us
                + overhead_share
            )
            violated = latency > config.latency_constraint_us_per_byte
            warmup = batch_index < config.warmup_batches
            if violated and not warmup and config.overload_penalty > 0.0:
                excess = min(
                    latency - config.latency_constraint_us_per_byte,
                    config.overload_penalty_cap_us_per_byte,
                )
                energy += (
                    config.overload_base_penalty
                    + config.overload_penalty * excess
                ) * batch_bytes
            metrics.append(
                BatchMetrics(
                    batch_index=batch_index,
                    latency_us_per_byte=latency,
                    energy_uj_per_byte=energy / batch_bytes,
                    violated=violated,
                )
            )
        return metrics
