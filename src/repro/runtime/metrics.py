"""Measurement records for executed stream-compression runs.

The paper's two metrics (§VI-C):

* **CLCV** — compressing-latency-constraint violation: the fraction of
  repeated measurements whose compressing latency exceeds ``L_set``;
* **E_mes** — measured energy per byte (µJ/byte), including every system
  overhead (scheduling, context switches, DVFS transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["BatchMetrics", "RepetitionResult", "RunResult"]


@dataclass(frozen=True)
class BatchMetrics:
    """One batch's measured period and energy."""

    batch_index: int
    latency_us_per_byte: float
    energy_uj_per_byte: float
    violated: bool


@dataclass(frozen=True)
class RepetitionResult:
    """One measurement run (several batches through the pipeline)."""

    repetition: int
    batches: Tuple[BatchMetrics, ...]
    latency_us_per_byte: float
    energy_uj_per_byte: float
    violated: bool
    plan_description: str = ""


@dataclass(frozen=True)
class RunResult:
    """Aggregate over the repeated measurements of one configuration."""

    repetitions: Tuple[RepetitionResult, ...]

    @property
    def clcv(self) -> float:
        """Fraction of repetitions violating the latency constraint."""
        if not self.repetitions:
            return 0.0
        return sum(r.violated for r in self.repetitions) / len(self.repetitions)

    @property
    def mean_energy_uj_per_byte(self) -> float:
        return float(
            np.mean([r.energy_uj_per_byte for r in self.repetitions])
        )

    @property
    def mean_latency_us_per_byte(self) -> float:
        return float(
            np.mean([r.latency_us_per_byte for r in self.repetitions])
        )

    @property
    def p99_latency_us_per_byte(self) -> float:
        return float(
            np.percentile(
                [r.latency_us_per_byte for r in self.repetitions], 99
            )
        )

    def summary(self) -> str:
        return (
            f"E={self.mean_energy_uj_per_byte:.3f} µJ/B, "
            f"L={self.mean_latency_us_per_byte:.2f} µs/B, "
            f"CLCV={self.clcv:.2f}"
        )
