"""Measurement records for executed stream-compression runs.

The paper's two metrics (§VI-C):

* **CLCV** — compressing-latency-constraint violation: the fraction of
  repeated measurements whose compressing latency exceeds ``L_set``;
* **E_mes** — measured energy per byte (µJ/byte), including every system
  overhead (scheduling, context switches, DVFS transitions).

Beyond the paper's means, :class:`RunResult` exposes tail percentiles
(p50/p95/p99 of both latency and energy) — CLCV is a tail phenomenon,
so the distribution matters, not just the mean — and, for traced runs,
a :class:`~repro.obs.trace.TraceSummary` carrying the event-level
counters. The summary is excluded from equality so a traced result
still compares equal to its untraced twin (the determinism tests rely
on this, as does the parallel-grid equality assertion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["BatchMetrics", "RepetitionResult", "RunResult"]


@dataclass(frozen=True)
class BatchMetrics:
    """One batch's measured period and energy."""

    batch_index: int
    latency_us_per_byte: float
    energy_uj_per_byte: float
    violated: bool


@dataclass(frozen=True)
class RepetitionResult:
    """One measurement run (several batches through the pipeline)."""

    repetition: int
    batches: Tuple[BatchMetrics, ...]
    latency_us_per_byte: float
    energy_uj_per_byte: float
    violated: bool
    plan_description: str = ""


@dataclass(frozen=True)
class RunResult:
    """Aggregate over the repeated measurements of one configuration."""

    repetitions: Tuple[RepetitionResult, ...]
    #: event-level digest of a traced run (None when tracing was off);
    #: comparison-neutral so traced == untraced holds for equal numbers
    trace_summary: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    @property
    def clcv(self) -> float:
        """Fraction of repetitions violating the latency constraint."""
        if not self.repetitions:
            return 0.0
        return sum(r.violated for r in self.repetitions) / len(self.repetitions)

    # -- central tendency ----------------------------------------------------

    @property
    def mean_energy_uj_per_byte(self) -> float:
        return float(
            np.mean([r.energy_uj_per_byte for r in self.repetitions])
        )

    @property
    def mean_latency_us_per_byte(self) -> float:
        return float(
            np.mean([r.latency_us_per_byte for r in self.repetitions])
        )

    # -- tails ---------------------------------------------------------------

    def latency_percentile(self, percentile: float) -> float:
        """Latency (µs/byte) at ``percentile`` over the repetitions."""
        return float(
            np.percentile(
                [r.latency_us_per_byte for r in self.repetitions], percentile
            )
        )

    def energy_percentile(self, percentile: float) -> float:
        """Energy (µJ/byte) at ``percentile`` over the repetitions."""
        return float(
            np.percentile(
                [r.energy_uj_per_byte for r in self.repetitions], percentile
            )
        )

    @property
    def p50_latency_us_per_byte(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_us_per_byte(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_us_per_byte(self) -> float:
        return self.latency_percentile(99)

    @property
    def p50_energy_uj_per_byte(self) -> float:
        return self.energy_percentile(50)

    @property
    def p95_energy_uj_per_byte(self) -> float:
        return self.energy_percentile(95)

    @property
    def p99_energy_uj_per_byte(self) -> float:
        return self.energy_percentile(99)

    def summary(self) -> str:
        return (
            f"E={self.mean_energy_uj_per_byte:.3f} µJ/B, "
            f"L={self.mean_latency_us_per_byte:.2f} µs/B "
            f"(p95 {self.p95_latency_us_per_byte:.2f}, "
            f"p99 {self.p99_latency_us_per_byte:.2f}), "
            f"CLCV={self.clcv:.2f}"
        )
