"""Text rendering of scheduling plans and measurements.

Terminal-friendly views for debugging and the examples: a per-core
occupancy chart of a plan estimate (who runs where, how close each core
is to the latency budget) and a sparkline of the energy meter's power
trace.
"""

from __future__ import annotations

from typing import List

from repro.core.plan import PlanEstimate
from repro.simcore.boards import BoardSpec

__all__ = ["render_plan", "render_power_trace", "render_gantt"]

_BAR_WIDTH = 36
_SPARK_LEVELS = " .:-=+*#%@"


def render_plan(estimate: PlanEstimate, board: BoardSpec) -> str:
    """Per-core occupancy chart of a plan against its latency budget.

    >>> print(render_plan(estimate, board))      # doctest: +SKIP
    core 4 A72 (big)    |t0######----------| 13.9 µs/B
    core 0 A53 (little) |t1################| 24.9 µs/B  <- bottleneck
    """
    budget = max(
        (task.l_us_per_byte for task in estimate.task_estimates),
        default=1.0,
    )
    budget = max(budget, max(estimate.core_load_us_per_byte.values(), default=0))
    bottleneck = estimate.bottleneck()

    by_core = {}
    for task in estimate.task_estimates:
        by_core.setdefault(task.core_id, []).append(task)

    lines: List[str] = []
    for core in board.cores:
        tasks = by_core.get(core.core_id, [])
        kind = "big" if core.is_big else "little"
        label = f"core {core.core_id} {core.model} ({kind})"
        if not tasks:
            lines.append(f"{label:28s} |{'-' * _BAR_WIDTH}| idle")
            continue
        bar = ""
        total = 0.0
        for task in tasks:
            stage = estimate.plan.graph.tasks[task.stage_index].name
            width = max(
                1, round(task.l_comp_us_per_byte / budget * _BAR_WIDTH)
            )
            cell = (stage + "#" * _BAR_WIDTH)[:width]
            bar += cell
            total += task.l_comp_us_per_byte
        bar = (bar + "-" * _BAR_WIDTH)[:_BAR_WIDTH]
        marker = ""
        if any(
            t.stage_index == bottleneck.stage_index
            and t.replica_index == bottleneck.replica_index
            for t in tasks
        ):
            marker = "  <- bottleneck"
        lines.append(f"{label:28s} |{bar}| {total:5.1f} µs/B{marker}")
    lines.append(
        f"{'':28s}  L_est={estimate.latency_us_per_byte:.2f} µs/B, "
        f"E_est={estimate.energy_uj_per_byte:.3f} µJ/B"
    )
    return "\n".join(lines)


def render_power_trace(samples, width: int = 72) -> str:
    """Sparkline of (time, watts) samples from the energy meter.

    Downsamples to ``width`` columns; each column's level is the mean
    power in its window, scaled to the trace's maximum.
    """
    if not samples:
        return "(no samples)"
    powers = [power for _, power in samples]
    peak = max(powers) or 1.0
    bucket = max(1, len(powers) // width)
    columns = []
    for start in range(0, len(powers), bucket):
        window = powers[start:start + bucket]
        level = sum(window) / len(window) / peak
        index = min(round(level * (len(_SPARK_LEVELS) - 1)), len(_SPARK_LEVELS) - 1)
        columns.append(_SPARK_LEVELS[index])
    duration = samples[-1][0]
    return (
        "".join(columns)
        + f"\npeak {peak * 1000:.1f} mW over {duration / 1000:.1f} ms"
    )


def _spans_from_recorder(recorder) -> dict:
    """Convert a :class:`repro.obs.TraceRecorder` (or its event list)
    into the legacy ``{core_id: [(task, batch, start, end), ...]}``
    shape, keeping only the last repetition's task spans."""
    events = getattr(recorder, "events", recorder)
    tasks = [
        event for event in events
        if event.phase == "X" and event.category == "task"
        and event.name != "ctx-switch"
    ]
    if not tasks:
        return {}
    last_rep = max(event.pid for event in tasks)
    spans: dict = {}
    for event in tasks:
        if event.pid != last_rep:
            continue
        batch = dict(event.args).get("batch", 0)
        spans.setdefault(event.tid, []).append(
            (event.name, batch, event.ts_us, event.ts_us + event.dur_us)
        )
    return spans


def render_gantt(
    trace,
    board: BoardSpec,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of a measured execution trace.

    ``trace`` is either :attr:`PipelineExecutor.last_trace`
    (``{core_id: [(task, batch, start_us, end_us), ...]}``) or a
    :class:`repro.obs.TraceRecorder` / list of its events, from which
    the final repetition's task spans are drawn. Each core is one row;
    busy spans print the digit of the batch they served (task
    boundaries show as transitions), idle time prints ``.``.
    """
    if not isinstance(trace, dict):
        trace = _spans_from_recorder(trace)
    end_time = max(
        (span[3] for spans in trace.values() for span in spans),
        default=0.0,
    )
    if end_time <= 0:
        return "(empty trace)"
    scale = width / end_time
    lines: List[str] = []
    for core in board.cores:
        row = ["."] * width
        for task_name, batch, start, end in trace.get(core.core_id, ()):
            first = min(int(start * scale), width - 1)
            last = min(int(end * scale), width - 1)
            glyph = str(batch % 10)
            for column in range(first, max(last, first) + 1):
                row[column] = glyph
        kind = "big" if core.is_big else "little"
        lines.append(
            f"core {core.core_id} ({kind:6s}) |{''.join(row)}|"
        )
    lines.append(
        f"{'':16s} 0 {'·' * (width - 12)} {end_time / 1000:.1f} ms"
    )
    return "\n".join(lines)
