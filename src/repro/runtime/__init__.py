"""Plan execution and measurement on the simulated board."""

from repro.runtime.executor import (
    ExecutionConfig,
    FaultSpec,
    MechanismDynamics,
    PipelineExecutor,
)
from repro.runtime.metrics import BatchMetrics, RepetitionResult, RunResult
from repro.runtime.visualize import render_gantt, render_plan, render_power_trace

__all__ = [
    "BatchMetrics",
    "ExecutionConfig",
    "FaultSpec",
    "MechanismDynamics",
    "PipelineExecutor",
    "RepetitionResult",
    "RunResult",
    "render_gantt",
    "render_plan",
    "render_power_trace",
]
