"""An IoT gateway pipeline: framing, sharded state, and integrity.

A gateway aggregates telemetry from many field devices and relays it
upstream. This example wires together the library's streaming pieces:

* a :class:`PartitionedCodec` — six lock-free dictionary shards (the
  paper's future-work state management) so the gateway could replicate
  its state-update workers without the Fig 5 lock or ratio loss;
* :class:`CompressionSession` framing with sequence numbers and
  checksums, so the uplink can detect loss and corruption;
* a corruption drill: flip one bit in transit and watch the decoder
  reject the frame instead of delivering bad data.

Run:  python examples/gateway_pipeline.py
"""

import numpy as np

from repro.compression import (
    CompressionSession,
    DecompressionSession,
    PartitionedCodec,
    Tdic32,
    get_codec,
)
from repro.datasets import get_dataset
from repro.errors import CorruptStreamError

BATCH_BYTES = 32768
BATCHES = 8
SHARDS = 6


class PartitionedAdapter:
    """Adapts PartitionedCodec to the session's codec interface."""

    stateful = True

    def __init__(self, shards: int) -> None:
        self._codec = PartitionedCodec(shards=shards)

    def compress(self, batch: bytes):
        payload = self._codec.compress(batch)

        class _Result:  # minimal result surface the session needs
            pass

        result = _Result()
        result.payload = payload
        return result

    def decompress(self, payload: bytes) -> bytes:
        return self._codec.decompress(payload)


def main() -> None:
    telemetry = get_dataset("rovio")
    batches = list(telemetry.stream(BATCH_BYTES, BATCHES, seed=7))

    # --- ratio comparison: monolithic vs sharded state ------------------
    monolithic = get_codec("tdic32")
    monolithic_bytes = sum(
        monolithic.compress(batch).output_size for batch in batches
    )
    sharded = PartitionedCodec(shards=SHARDS)
    sharded_bytes = sum(len(sharded.compress(batch)) for batch in batches)
    raw_bytes = sum(len(batch) for batch in batches)
    print(f"telemetry:            {raw_bytes} bytes in {BATCHES} batches")
    print(f"monolithic tdic32:    {raw_bytes / monolithic_bytes:.2f}x")
    print(
        f"{SHARDS}-shard partitioned: {raw_bytes / sharded_bytes:.2f}x "
        "(routing stream included; state now lock-free for "
        f"{SHARDS} parallel workers)"
    )

    # --- framed uplink with integrity -----------------------------------
    encoder = CompressionSession(PartitionedAdapter(SHARDS))
    wire = b"".join(encoder.write_batch(batch) for batch in batches)
    print(f"\nuplink stream:        {len(wire)} bytes in "
          f"{encoder.frames_written} frames "
          f"(ratio {encoder.compression_ratio:.2f} with framing)")

    decoder = DecompressionSession(PartitionedAdapter(SHARDS))
    received = []
    for offset in range(0, len(wire), 4093):  # arbitrary packetization
        received.extend(decoder.feed(wire[offset:offset + 4093]))
    decoder.finish()
    assert received == batches
    print("cloud side:           all frames decoded, payloads verified")

    # --- corruption drill -------------------------------------------------
    tampered = bytearray(wire)
    tampered[len(tampered) // 2] ^= 0x40
    drill = DecompressionSession(PartitionedAdapter(SHARDS))
    try:
        drill.feed(bytes(tampered))
        drill.finish()
    except CorruptStreamError as error:
        print(f"corruption drill:     rejected as expected ({error})")
    else:
        raise AssertionError("corruption must not pass silently")


if __name__ == "__main__":
    main()
