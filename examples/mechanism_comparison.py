"""Compare all six parallelization mechanisms on one workload (§VII-A).

Run:  python examples/mechanism_comparison.py [codec] [dataset]

Defaults to tdic32 on the Rovio profile. Prints the Fig 7 / Fig 8 cells
for the chosen workload, plus each mechanism's plan.
"""

import sys

import numpy as np

from repro.bench.harness import Harness, WorkloadSpec, format_table
from repro.core.baselines import MECHANISM_NAMES, get_mechanism


def main() -> None:
    codec = sys.argv[1] if len(sys.argv) > 1 else "tdic32"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "rovio"

    harness = Harness(repetitions=30)
    workload = WorkloadSpec.of(codec, dataset)
    context = harness.context(workload)
    print(f"workload: {workload.label}, L_set = "
          f"{workload.latency_constraint} µs/byte")
    print(f"decomposition: {context.fine_graph.describe()}\n")

    rows = []
    for mechanism_name in MECHANISM_NAMES:
        outcome = get_mechanism(mechanism_name).prepare(context)
        plan = outcome.plan
        if callable(plan):  # randomized mechanisms draw per repetition
            description = outcome.description
        else:
            description = plan.describe()
        result = harness.run(workload, mechanism_name)
        rows.append(
            (
                mechanism_name,
                f"{result.mean_energy_uj_per_byte:.3f}",
                f"{result.mean_latency_us_per_byte:.2f}",
                f"{result.clcv:.2f}",
                description,
            )
        )
    print(
        format_table(
            f"mechanisms on {workload.label}",
            ("mechanism", "E (µJ/B)", "L (µs/B)", "CLCV", "plan"),
            rows,
        )
    )

    energies = {row[0]: float(row[1]) for row in rows}
    worst = max(energies, key=energies.get)
    saving = 1 - energies["CStream"] / energies[worst]
    print(
        f"\nCStream consumes {saving:.0%} less energy than {worst} on "
        "this workload, without violating the latency constraint."
    )


if __name__ == "__main__":
    main()
