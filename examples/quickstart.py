"""Quickstart: parallelize one stream-compression procedure with CStream.

Run:  python examples/quickstart.py

The facade walks the paper's Fig 4 workflow: profile the workload,
decompose it into fine-grained tasks, schedule them on the simulated
rk3399 with the asymmetry-aware cost model, then execute and measure.
"""

from repro import CStream


def main() -> None:
    framework = CStream(
        codec="tcomp32",                     # stateless null suppression
        dataset="rovio",                     # game-telemetry profile
        batch_size=65536,                    # bytes per batch (Definition 1)
        latency_constraint_us_per_byte=26.0  # the paper's default L_set
    )

    # 1. Dry-run profiling: per-step costs and operational intensities.
    profile = framework.profile()
    print("per-step operational intensity (κ):")
    for step_id in profile.step_ids:
        print(f"  {step_id}: κ = {profile.step_kappa(step_id):7.1f}")
    print(f"compression ratio: {profile.compression_ratio:.2f}\n")

    # 2. Fine-grained decomposition (fusion of cheap steps).
    context = framework.context()
    print(f"decomposed pipeline: {context.fine_graph.describe()}\n")

    # 3. Asymmetry-aware scheduling (cores 0-3 little, 4-5 big).
    schedule = framework.plan()
    print(f"optimal plan:        {schedule.plan.describe()}")
    print(f"predicted latency:   {schedule.estimate.latency_us_per_byte:.2f} µs/byte")
    print(f"predicted energy:    {schedule.estimate.energy_uj_per_byte:.3f} µJ/byte")
    print(f"plans evaluated:     {schedule.plans_evaluated}\n")

    # 4. Execute on the simulated board and measure.
    result = framework.run(repetitions=20)
    print(f"measured latency:    {result.mean_latency_us_per_byte:.2f} µs/byte")
    print(f"measured energy:     {result.mean_energy_uj_per_byte:.3f} µJ/byte")
    print(f"constraint violations (CLCV): {result.clcv:.2f}")

    # 5. The codec itself is a real compressor.
    data = framework.dataset.generate(4096, seed=1)
    payload = framework.compress(data)
    assert framework.decompress(payload) == data
    print(f"\nround-trip OK: {len(data)} -> {len(payload)} bytes")


if __name__ == "__main__":
    main()
