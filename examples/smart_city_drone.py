"""Smart-city patrol drone (the paper's Fig 1 motivating scenario).

A battery-powered drone gathers XML sensor readings (air quality, wind
speed) and compresses them with lz4 before uploading, to cut radio time.
Compression must keep up with the gathering rate (the latency
constraint) while draining as little battery as possible.

This example compares letting the OS schedule the compression workers
against CStream's asymmetry-aware plan, and translates the measured
energy into patrol-time gained.

Run:  python examples/smart_city_drone.py
"""

from repro.bench.harness import Harness, WorkloadSpec

#: drone mission parameters
SENSOR_RATE_MB_PER_MINUTE = 24.0
BATTERY_BUDGET_J_FOR_COMPRESSION = 40.0


def patrol_minutes(energy_uj_per_byte: float) -> float:
    """Minutes of sensor traffic the compression budget sustains."""
    joules_per_minute = (
        energy_uj_per_byte * SENSOR_RATE_MB_PER_MINUTE * 1e6 / 1e6
    )
    return BATTERY_BUDGET_J_FOR_COMPRESSION / joules_per_minute


def main() -> None:
    harness = Harness(repetitions=20)
    workload = WorkloadSpec.of(
        "lz4",
        "sensor",
        dataset_options={"station_count": 12},
        latency_constraint=26.0,
    )

    profile = harness.profile(workload)
    print(
        f"sensor stream: {profile.compression_ratio:.2f}x compressible, "
        f"{profile.statistics.vocabulary_duplication:.0%} vocabulary "
        "duplication (repeated XML markup)\n"
    )

    print(f"{'mechanism':10s} {'energy':>12s} {'latency':>12s} "
          f"{'CLCV':>6s} {'patrol time':>12s}")
    for mechanism in ("OS", "CStream"):
        result = harness.run(workload, mechanism)
        print(
            f"{mechanism:10s} "
            f"{result.mean_energy_uj_per_byte:9.3f} µJ/B "
            f"{result.mean_latency_us_per_byte:9.2f} µs/B "
            f"{result.clcv:6.2f} "
            f"{patrol_minutes(result.mean_energy_uj_per_byte):8.1f} min"
        )

    os_result = harness.run(workload, "OS")
    cstream_result = harness.run(workload, "CStream")
    gained = patrol_minutes(
        cstream_result.mean_energy_uj_per_byte
    ) - patrol_minutes(os_result.mean_energy_uj_per_byte)
    saving = 1 - (
        cstream_result.mean_energy_uj_per_byte
        / os_result.mean_energy_uj_per_byte
    )
    print(
        f"\nCStream saves {saving:.0%} compression energy over the OS "
        f"scheduler — about {gained:.0f} extra minutes of patrol per "
        "charge, with zero compressing-latency violations."
    )

    plan = harness.context(workload)
    from repro.core.baselines import CStreamMechanism

    outcome = CStreamMechanism().prepare(plan)
    print(f"\nCStream's plan on the rk3399: {outcome.description}")
    print("(cores 0-3 are the A53 little cluster, 4-5 the A72 big cluster)")


if __name__ == "__main__":
    main()
