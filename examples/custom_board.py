"""Schedule on a custom asymmetric board (beyond the rk3399).

The paper's future work mentions porting CStream to other hardware.
Every piece of the framework is parameterized by a
:class:`~repro.simcore.boards.BoardSpec`, so a different big.LITTLE
topology is just data. This example builds an octa-core phone-style SoC
(6 efficiency cores + 2 performance cores with a deeper frequency
ladder) and shows how the optimal plan shifts relative to the rk3399.

Run:  python examples/custom_board.py
"""

from repro.core.baselines import WorkloadContext
from repro.core.profiler import profile_workload
from repro.core.scheduler import Scheduler
from repro.compression import get_codec
from repro.datasets import get_dataset
from repro.simcore.boards import BoardSpec, rk3399
from repro.simcore.hardware import ClusterSpec, CoreSpec, CoreType


def octa_core_soc() -> BoardSpec:
    """A phone-style 6+2 SoC reusing the rk3399's core models."""
    reference = rk3399()
    little_reference = reference.core_by_id[0]
    big_reference = reference.core_by_id[4]

    cores = []
    for core_id in range(6):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.LITTLE,
                cluster_id=0,
                model="efficiency",
                max_frequency_mhz=little_reference.max_frequency_mhz,
                frequency_levels_mhz=little_reference.frequency_levels_mhz,
                eta=little_reference.eta,
                zeta=little_reference.zeta,
                static_power_w=little_reference.static_power_w,
                busy_floor_power_w=little_reference.busy_floor_power_w,
            )
        )
    for core_id in (6, 7):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.BIG,
                cluster_id=1,
                model="performance",
                max_frequency_mhz=big_reference.max_frequency_mhz,
                frequency_levels_mhz=big_reference.frequency_levels_mhz,
                eta=big_reference.eta,
                zeta=big_reference.zeta,
                static_power_w=big_reference.static_power_w,
                busy_floor_power_w=big_reference.busy_floor_power_w,
            )
        )
    return BoardSpec(
        name="octa-core 6+2 SoC",
        cores=tuple(cores),
        clusters=(
            ClusterSpec(cluster_id=0, core_type=CoreType.LITTLE,
                        core_ids=(0, 1, 2, 3, 4, 5)),
            ClusterSpec(cluster_id=1, core_type=CoreType.BIG,
                        core_ids=(6, 7)),
        ),
        interconnect=reference.interconnect,
        uncore_power_w=reference.uncore_power_w,
        context_switch_instructions=reference.context_switch_instructions,
        replication_latency_overhead=reference.replication_latency_overhead,
        replication_energy_overhead=reference.replication_energy_overhead,
    )


def main() -> None:
    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 65536, batches=4
    )
    tight_constraint = 11.0  # µs/byte — forces replication

    for board in (rk3399(), octa_core_soc()):
        context = WorkloadContext.build(board, profile, tight_constraint)
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        idle = len(board.cores) - len(result.plan.cores_used())
        print(f"{board.name}")
        print(f"  plan:    {result.plan.describe()}")
        print(f"  replicas per stage: {result.replica_counts}")
        print(f"  E_est = {result.estimate.energy_uj_per_byte:.3f} µJ/B, "
              f"L_est = {result.estimate.latency_us_per_byte:.2f} µs/B "
              f"(L_set = {tight_constraint}), {idle} cores left idle\n")

    print(
        "the same profiling/decomposition/scheduling pipeline runs "
        "unchanged on the new topology — under this deadline the 6+2 SoC "
        "meets the plan with three little cores to spare for other "
        "onboard duties, where the rk3399 is nearly saturated."
    )


if __name__ == "__main__":
    main()
