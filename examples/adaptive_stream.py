"""Adapting to a drifting stream with PID feedback regulation (§V-D).

A tcomp32 pipeline is planned for narrow sensor values; mid-stream the
values' dynamic range jumps (a sensor fault, say), the old plan starts
violating the latency constraint, and the feedback regulator
recalibrates the cost model with the incremental PID of Eq 8 and
replans.

Run:  python examples/adaptive_stream.py
"""

import numpy as np

from repro.compression import get_codec
from repro.core.adaptive import FeedbackRegulator
from repro.core.baselines import WorkloadContext
from repro.core.profiler import profile_workload
from repro.datasets import MicroDataset
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.simcore.boards import rk3399

BATCH_BYTES = 65536
LATENCY_CONSTRAINT = 20.0
CHANGE_AT_BATCH = 5
TOTAL_BATCHES = 14


def main() -> None:
    board = rk3399()
    codec = get_codec("tcomp32")

    # Profile the initial (narrow-range) stream and plan for it.
    low_profile = profile_workload(
        codec, MicroDataset(dynamic_range=500), BATCH_BYTES, batches=6
    )
    context = WorkloadContext.build(board, low_profile, LATENCY_CONSTRAINT)
    regulator = FeedbackRegulator(context.cost_model(context.fine_graph))
    print(f"initial plan: {regulator.plan.describe()}")
    print(f"predicted latency: "
          f"{regulator.estimate.latency_us_per_byte:.2f} µs/byte "
          f"(constraint {LATENCY_CONSTRAINT})\n")

    # Build the drifting stream: the range jumps 500 -> 50000.
    high_profile = profile_workload(
        get_codec("tcomp32"),
        MicroDataset(dynamic_range=50_000),
        BATCH_BYTES,
        batches=TOTAL_BATCHES - CHANGE_AT_BATCH,
        seed=1,
    )
    stream = (
        list(low_profile.per_batch_step_costs)[:CHANGE_AT_BATCH]
        + list(high_profile.per_batch_step_costs)
    )[:TOTAL_BATCHES]

    executor = PipelineExecutor(
        board,
        ExecutionConfig(
            latency_constraint_us_per_byte=LATENCY_CONSTRAINT,
            repetitions=1,
            batches_per_repetition=3,
            warmup_batches=2,
        ),
    )
    rng = np.random.default_rng(0)

    print(f"{'batch':>5s} {'measured':>10s} {'estimated':>10s} "
          f"{'state':>12s}")
    for index, costs in enumerate(stream):
        metrics = executor.run_single(
            regulator.plan, [costs] * 3, BATCH_BYTES, rng
        )
        measured = metrics[-1].latency_us_per_byte
        event = regulator.observe(index, measured)
        if event.replanned:
            state = "replanned!"
        elif event.calibrating:
            state = "calibrating"
        elif metrics[-1].violated:
            state = "VIOLATED"
        else:
            state = "ok"
        print(
            f"{index:5d} {measured:8.2f} µs "
            f"{event.estimated_latency:8.2f} µs {state:>12s}"
        )

    print(f"\nfinal plan: {regulator.plan.describe()}")
    print(
        "the regulator detected the drift, spent a few batches "
        "calibrating the model's latency scale "
        f"(now {regulator.events[-1].latency_scale:.2f}x) and moved the "
        "pipeline onto a plan that meets the constraint again."
    )


if __name__ == "__main__":
    main()
